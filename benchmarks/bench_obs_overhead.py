"""Overhead budget of the observability layer (``repro.obs``).

The layer's contract is **zero cost when disabled**: ``Simulator.run``
selects the plain or the observed step variant once per call, the scheduler
gates once per pass, and the disabled hot paths carry no per-event checks.
These benchmarks enforce the contract:

* the disabled layer adds < 5% to engine event dispatch, measured by
  comparing ``run()`` (which pays the single gate) against a bare
  ``while sim.step(): pass`` loop over the same event population;
* the scheduler's 5,000 req/s floor (10x the paper's figure, raised by the
  issue-7 kernel overhaul) holds with observation disabled *and* with a
  live tracer + metrics registry, so turning observability on for a
  debugging session can never push the system under it.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -s
"""
from __future__ import annotations

import statistics
import time

from bench_scheduler_throughput import build_workload

from repro.core import Scheduler
from repro.obs import EventTracer, MetricsRegistry, observe
from repro.sim.engine import Simulator

#: Events per engine benchmark round (large enough to smooth fixed costs).
EVENT_COUNT = 50_000
#: Disabled-observability overhead ceiling, percent.
OVERHEAD_CEILING_PCT = 5.0
#: Scheduler throughput floor, requests/second (10x the paper's figure).
THROUGHPUT_FLOOR = 5_000


def _noop() -> None:
    pass


def _populated_simulator(events: int = EVENT_COUNT) -> Simulator:
    sim = Simulator()
    for i in range(events):
        sim.schedule(float(i) * 1e-3, _noop)
    return sim


def _median_run_seconds(body, repeats: int = 7) -> float:
    samples = []
    for _ in range(repeats):
        sim = _populated_simulator()
        started = time.perf_counter()
        body(sim)
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _bare_step_loop(sim: Simulator) -> None:
    while sim.step():
        pass


def test_disabled_observability_overhead_under_5_percent():
    """``run()`` vs a bare step loop: the gate must cost < 5%."""
    bare = _median_run_seconds(_bare_step_loop)
    through_run = _median_run_seconds(lambda sim: sim.run())
    overhead_pct = 100.0 * (through_run - bare) / bare
    print(
        f"\nengine dispatch: bare={bare:.4f}s run()={through_run:.4f}s "
        f"overhead={overhead_pct:+.2f}% (ceiling {OVERHEAD_CEILING_PCT:.1f}%)"
    )
    assert overhead_pct < OVERHEAD_CEILING_PCT


def _pass_throughput(observed: bool) -> float:
    scheduler = Scheduler({"c0": 4096})
    request_count = sum(
        len(app.all_requests()) for app in build_workload(16, 8).values()
    )
    samples = []
    for _ in range(5):
        applications = build_workload(16, 8)
        if observed:
            with observe(tracer=EventTracer(), metrics=MetricsRegistry()):
                started = time.perf_counter()
                scheduler.schedule(applications, now=0.0)
                samples.append(time.perf_counter() - started)
        else:
            started = time.perf_counter()
            scheduler.schedule(applications, now=0.0)
            samples.append(time.perf_counter() - started)
    return request_count / statistics.median(samples)


def test_scheduler_floor_holds_with_observation_disabled():
    throughput = _pass_throughput(observed=False)
    print(f"\nscheduler disabled-obs: {throughput:,.0f} req/s (floor {THROUGHPUT_FLOOR})")
    assert throughput > THROUGHPUT_FLOOR


def test_scheduler_floor_holds_with_observation_enabled():
    throughput = _pass_throughput(observed=True)
    print(f"\nscheduler enabled-obs: {throughput:,.0f} req/s (floor {THROUGHPUT_FLOOR})")
    assert throughput > THROUGHPUT_FLOOR
