"""Pluggable request-routing policies of the federation meta-scheduler.

Mirrors the stage-registry design of :mod:`repro.policies.registry`:
routing policies are registered by name so federation specs and campaign
files stay serialisable (a JSON spec only ever references a routing policy
by its name), and every lookup constructs a *fresh* instance, so two
meta-schedulers never share routing state (round-robin counters, affinity
homes) even when they run the same named policy.

A routing policy answers exactly one question: *which member cluster of the
federation should this incoming application land on?*  It sees a
:class:`RoutingRequest` (who is asking, how many nodes, which affinity
group) and one :class:`ClusterState` snapshot per member, and returns the
index of the chosen member.  Everything stateful about a decision -- what is
outstanding where -- is computed by the meta-scheduler and handed in through
the snapshots, so policies stay small and deterministic.

Determinism contract: given the same seed and the same submission sequence,
every policy must produce the same assignment sequence regardless of
process, worker count or wall clock.  The ``random`` policy therefore draws
per-decision from :func:`~repro.sim.randomness.derive_seed` instead of
consuming a shared stream.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..sim.randomness import MAX_DERIVED_SEED, derive_seed

__all__ = [
    "DEFAULT_ROUTING",
    "RoutingRequest",
    "ClusterState",
    "RoutingPolicy",
    "register_routing",
    "make_routing",
    "routing_names",
    "describe_routing",
]

#: The routing every federation uses unless told otherwise: first cluster
#: that fits.  On a 1-cluster federation this is the identity routing, which
#: is what the single-cluster equivalence guarantee is stated against.
DEFAULT_ROUTING = "any"


@dataclass(frozen=True)
class RoutingRequest:
    """What the meta-scheduler knows about an incoming application."""

    #: RMS application id of the incoming application.
    app_id: str
    #: Node count the application is expected to occupy (its pre-allocation,
    #: rigid size or declared peak); 0 when unknown (fully elastic apps).
    node_count: int = 0
    #: Affinity key: follow-up submissions with the same group are pinned to
    #: the group's home cluster by the ``affinity`` policy.  Defaults to the
    #: application id (every application is its own group).
    group: str = ""
    #: Simulated submission time.
    submit_time: float = 0.0

    def affinity_group(self) -> str:
        return self.group or self.app_id


@dataclass(frozen=True)
class ClusterState:
    """Immutable snapshot of one federation member at decision time."""

    #: Member (and cluster) name.
    name: str
    #: Position in the federation spec (ties break towards lower indices).
    index: int
    #: Total node count of the member cluster.
    capacity: int
    #: Nodes not currently bound to any request.
    free_nodes: int
    #: Sum of the node-count hints of applications routed here that have not
    #: finished yet (queued *and* running work the meta-scheduler committed).
    outstanding_nodes: int
    #: Number of unfinished applications routed here.
    outstanding_apps: int

    @property
    def load(self) -> float:
        """Committed work relative to capacity (the least-loaded criterion)."""
        return self.outstanding_nodes / self.capacity if self.capacity else float("inf")

    def fits(self, node_count: int) -> bool:
        return node_count <= self.capacity


class RoutingPolicy:
    """Base class: pick one member index for an incoming application."""

    #: Registry name (set by the concrete classes).
    name = "routing"

    def __init__(self, seed: int = 0):
        self.seed = int(seed)

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(seed={self.seed})"


def _first_fitting(request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
    """Index of the first cluster that can ever hold the request (else 0)."""
    for state in clusters:
        if state.fits(request.node_count):
            return state.index
    return 0


class AnyRouting(RoutingPolicy):
    """First cluster that fits the request, in federation order.

    The identity routing: on a 1-cluster federation every application lands
    on the single member, which makes a federated run byte-identical to the
    direct single-scheduler path (the load-bearing equivalence contract).
    """

    name = "any"

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        return _first_fitting(request, clusters)


class RoundRobinRouting(RoutingPolicy):
    """Clusters take turns in federation order, skipping ones that never fit."""

    name = "round-robin"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._next = 0

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        n = len(clusters)
        for offset in range(n):
            state = clusters[(self._next + offset) % n]
            if state.fits(request.node_count):
                self._next = (state.index + 1) % n
                return state.index
        self._next = (self._next + 1) % n
        return 0


class LeastLoadedRouting(RoutingPolicy):
    """Cluster with the least committed work relative to its capacity.

    Load counts the node-count hints of every unfinished application the
    meta-scheduler routed to a member -- queued and running alike -- so a
    backlog is visible even before any of it starts.  Ties break towards
    the earlier cluster in the federation spec.
    """

    name = "least-loaded"

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        fitting = [s for s in clusters if s.fits(request.node_count)] or list(clusters)
        return min(fitting, key=lambda s: (s.load, s.index)).index


class BestFitCapacityRouting(RoutingPolicy):
    """Smallest cluster whose total capacity fits the request.

    Packs small requests onto small clusters so the big ones stay free for
    requests nothing else can hold; requests no cluster fits fall back to
    the largest cluster (where clamping loses the least).
    """

    name = "best-fit"

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        fitting = [s for s in clusters if s.fits(request.node_count)]
        if fitting:
            return min(fitting, key=lambda s: (s.capacity, s.index)).index
        return max(clusters, key=lambda s: (s.capacity, -s.index)).index


class RandomRouting(RoutingPolicy):
    """Seeded uniform choice among the clusters that fit the request.

    Each decision hashes ``(seed, app_id)`` through ``derive_seed``, so the
    assignment of one application never depends on how many applications
    were routed before it -- the whole sequence is reproducible from the
    federation seed alone, independent of worker count or arrival order.
    """

    name = "random"

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        fitting = [s for s in clusters if s.fits(request.node_count)] or list(clusters)
        draw = derive_seed(self.seed, "route", request.app_id) / MAX_DERIVED_SEED
        return fitting[int(draw * len(fitting)) % len(fitting)].index


class AffinityRouting(RoutingPolicy):
    """Pin every affinity group to a home cluster (locality routing).

    The first submission of a group picks the least-loaded fitting cluster
    and that choice becomes the group's *home*; every follow-up submission
    of the same group lands on the home cluster, even when another member
    is momentarily idler -- locality (shared input data, a warmed cache, a
    user's allocation) beats balance.  A follow-up that cannot ever fit on
    the home cluster is re-routed (and re-homed) least-loaded.
    """

    name = "affinity"

    def __init__(self, seed: int = 0):
        super().__init__(seed)
        self._homes: Dict[str, int] = {}
        self._fallback = LeastLoadedRouting(seed)

    def route(self, request: RoutingRequest, clusters: Sequence[ClusterState]) -> int:
        group = request.affinity_group()
        home = self._homes.get(group)
        if home is not None and clusters[home].fits(request.node_count):
            return home
        choice = self._fallback.route(request, clusters)
        self._homes[group] = choice
        return choice


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #
_ROUTINGS: Dict[str, Callable[[int], RoutingPolicy]] = {}


def register_routing(name: str, factory: Callable[[int], RoutingPolicy]) -> None:
    """Register a routing-policy factory (``factory(seed) -> policy``)."""
    if name in _ROUTINGS:
        raise ValueError(f"routing policy {name!r} is already registered")
    _ROUTINGS[name] = factory


def make_routing(name: str, seed: Optional[int] = None) -> RoutingPolicy:
    """Build a fresh routing policy for a registered name."""
    try:
        factory = _ROUTINGS[name]
    except KeyError:
        raise KeyError(
            f"unknown routing policy {name!r}; known: {routing_names()}"
        ) from None
    return factory(0 if seed is None else int(seed))


def routing_names() -> List[str]:
    return sorted(_ROUTINGS)


def describe_routing(name: str) -> str:
    """First documentation line of a registered routing policy."""
    doc = (make_routing(name).__doc__ or "").strip()
    return doc.splitlines()[0] if doc else ""


for _cls in (
    AnyRouting,
    RoundRobinRouting,
    LeastLoadedRouting,
    BestFitCapacityRouting,
    RandomRouting,
    AffinityRouting,
):
    register_routing(_cls.name, _cls)
