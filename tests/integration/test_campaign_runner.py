"""Campaign runner: deterministic parallelism, registry, CLI round-trips.

The central guarantee under test: the same campaign spec produces
byte-identical run records whether it executes serially or across a
multiprocessing pool, because per-run seeds are derived from the spec and
records are canonically re-ordered before persisting.
"""
from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PlatformSpec,
    ResultStore,
    ScenarioSpec,
    WorkloadSpec,
    builtin_scenarios,
    get_runner,
    resolve_scenarios,
    runner_names,
)
from repro.campaign.cli import main as cli_main
from repro.sim.randomness import derive_seed

#: Cheap scenarios (single simulation per run at tiny scale).
FAST = ("baseline-dynamic", "strict-equipartition")


def make_spec(scenarios=FAST, seeds=2, name="itest", root_seed=0) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        scenarios=tuple(resolve_scenarios(scenarios)),
        seeds=seeds,
        root_seed=root_seed,
    )


class TestRegistry:
    def test_builtin_scenarios_cover_every_figure(self):
        names = set(builtin_scenarios())
        assert {"fig1", "fig2", "fig3", "fig4", "fig9", "fig10", "fig11"} <= names

    def test_every_builtin_scenario_has_a_registered_runner(self):
        registered = set(runner_names())
        for spec in builtin_scenarios().values():
            assert spec.runner in registered
            assert callable(get_runner(spec.runner))

    def test_unknown_scenario_has_helpful_error(self):
        with pytest.raises(KeyError, match="built-in scenarios"):
            resolve_scenarios(["figZZ"])

    def test_scale_override(self):
        (spec,) = resolve_scenarios(["fig9"], scale="reduced")
        assert spec.scale == "reduced"


class TestRunnerDeterminism:
    def test_task_seeds_are_derived_from_the_spec(self):
        spec = make_spec(seeds=3, root_seed=11)
        tasks = CampaignRunner(spec).tasks()
        assert len(tasks) == 6
        for task in tasks:
            assert task.seed == derive_seed(11, task.scenario.name, task.replicate)

    def test_serial_and_parallel_records_are_identical(self, tmp_path):
        spec = make_spec()
        store_a = ResultStore(tmp_path / "serial")
        store_b = ResultStore(tmp_path / "parallel")
        CampaignRunner(spec, store=store_a).run(workers=1)
        CampaignRunner(spec, store=store_b).run(workers=3)
        serial = store_a.runs_path(spec.name).read_bytes()
        parallel = store_b.runs_path(spec.name).read_bytes()
        assert serial == parallel

    def test_different_root_seed_changes_metrics(self):
        base = CampaignRunner(make_spec(("baseline-dynamic",), seeds=1)).run()
        other = CampaignRunner(
            make_spec(("baseline-dynamic",), seeds=1, root_seed=99)
        ).run()
        assert (
            base.records[0]["metrics"]["amr_used_node_seconds"]
            != other.records[0]["metrics"]["amr_used_node_seconds"]
        )

    def test_replicates_differ_from_each_other(self):
        result = CampaignRunner(make_spec(("baseline-dynamic",), seeds=2)).run()
        first, second = (r["metrics"]["amr_used_node_seconds"] for r in result.records)
        assert first != second

    def test_progress_streams_every_run(self):
        seen = []
        spec = make_spec(("baseline-dynamic",), seeds=2)
        CampaignRunner(spec, progress=lambda done, total, rec: seen.append((done, total))).run()
        assert seen == [(1, 2), (2, 2)]

    def test_records_are_canonically_ordered(self):
        result = CampaignRunner(make_spec(seeds=2)).run(workers=2)
        keys = [(r["scenario"], r["replicate"]) for r in result.records]
        assert keys == [
            ("baseline-dynamic", 0),
            ("baseline-dynamic", 1),
            ("strict-equipartition", 0),
            ("strict-equipartition", 1),
        ]

    def test_metrics_of_lookup(self):
        result = CampaignRunner(make_spec(seeds=1)).run()
        metrics = result.metrics_of("baseline-dynamic")
        assert "psa_waste_percent" in metrics
        with pytest.raises(KeyError):
            result.metrics_of("nonexistent")


class TestMixedWorkloadScenario:
    def test_mixed_rigid_runs_and_reports_rigid_jobs(self):
        result = CampaignRunner(make_spec(("mixed-rigid",), seeds=1)).run()
        metrics = result.records[0]["metrics"]
        assert metrics["rigid_jobs"] == 8
        assert 0 <= metrics["rigid_finished"] <= 8

    def test_rigid_only_scenario_has_no_implicit_psa(self):
        # With the AMR dropped and no PSA durations listed, nothing may
        # inject the scale's default PSA1 behind the spec's back.
        scenario = ScenarioSpec(
            name="rigid-only",
            workload=WorkloadSpec(
                include_amr=False,
                rigid_job_count=3,
                rigid_mean_interarrival=30.0,
                rigid_runtime_median=120.0,
            ),
            platform=PlatformSpec(cluster_nodes=32),
        )
        spec = CampaignSpec(name="rigid-only", scenarios=(scenario,))
        metrics = CampaignRunner(spec).run().records[0]["metrics"]
        assert metrics["rigid_jobs"] == 3
        assert metrics["psa_completed_node_seconds"] == 0.0
        assert metrics["psa_waste_node_seconds"] == 0.0


class TestCli:
    def test_run_list_report_round_trip(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        code = cli_main(
            [
                "campaign", "run",
                "--scenarios", "baseline-dynamic",
                "--seeds", "2",
                "--workers", "2",
                "--results-dir", results,
                "--name", "cli-demo",
                "--quiet",
            ]
        )
        assert code == 0
        assert "cli-demo" in capsys.readouterr().out

        assert cli_main(["campaign", "list", "--results-dir", results]) == 0
        out = capsys.readouterr().out
        assert "cli-demo" in out and "baseline-dynamic" in out

        assert cli_main(["campaign", "report", "cli-demo", "--results-dir", results]) == 0
        assert "psa_waste_percent" in capsys.readouterr().out

    def test_report_compare(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        for name, root_seed in (("first", "0"), ("second", "5")):
            cli_main(
                [
                    "campaign", "run",
                    "--scenarios", "baseline-dynamic",
                    "--results-dir", results,
                    "--name", name,
                    "--root-seed", root_seed,
                    "--quiet",
                ]
            )
        capsys.readouterr()
        code = cli_main(
            ["campaign", "report", "first", "--compare", "second", "--results-dir", results]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "delta" in out and "baseline-dynamic" in out

    def test_run_from_spec_file(self, tmp_path, capsys):
        results = str(tmp_path / "results")
        spec = make_spec(("baseline-dynamic",), seeds=1, name="from-file")
        spec_path = tmp_path / "campaign.json"
        spec.save(spec_path)
        code = cli_main(
            ["campaign", "run", "--spec", str(spec_path), "--results-dir", results, "--quiet"]
        )
        assert code == 0
        records = ResultStore(results).load_records("from-file")
        assert len(records) == 1
        capsys.readouterr()

    def test_spec_file_flags_override(self, tmp_path, capsys):
        # --seeds / --root-seed given next to --spec must win, not be
        # silently swallowed.
        results = str(tmp_path / "results")
        spec = make_spec(("baseline-dynamic",), seeds=1, name="from-file")
        spec_path = tmp_path / "campaign.json"
        spec.save(spec_path)
        code = cli_main(
            [
                "campaign", "run",
                "--spec", str(spec_path),
                "--seeds", "2",
                "--root-seed", "9",
                "--results-dir", results,
                "--quiet",
            ]
        )
        assert code == 0
        records = ResultStore(results).load_records("from-file")
        assert len(records) == 2
        assert records[0]["seed"] == derive_seed(9, "baseline-dynamic", 0)
        capsys.readouterr()

    def test_scenarios_listing(self, capsys):
        assert cli_main(["campaign", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig9" in out and "mixed-rigid" in out

    def test_unknown_scenario_is_an_error(self, tmp_path, capsys):
        code = cli_main(
            [
                "campaign", "run",
                "--scenarios", "not-a-scenario",
                "--results-dir", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_report_missing_campaign_is_an_error(self, tmp_path, capsys):
        code = cli_main(["campaign", "report", "ghost", "--results-dir", str(tmp_path)])
        assert code == 2
        capsys.readouterr()


class TestStoredRecordShape:
    def test_record_schema_and_strict_json(self, tmp_path):
        spec = make_spec(("baseline-dynamic",), seeds=1)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store=store).run()
        (line,) = store.runs_path(spec.name).read_text().strip().splitlines()
        record = json.loads(line)
        assert set(record) == {
            "scenario",
            "base_scenario",
            "policy",
            "routing",
            "topology",
            "replicate",
            "seed",
            "runner",
            "scale",
            "metrics",
            "unit",
        }
        assert record["scenario"] == "baseline-dynamic"
        assert record["base_scenario"] == "baseline-dynamic"
        assert record["policy"] == "coorm"
        assert record["routing"] == ""
        assert record["topology"] == ""
        assert record["replicate"] == 0
        assert record["runner"] == "amr_psa"
        assert record["scale"] == "tiny"
        assert record["unit"].startswith("baseline-dynamic:r0:")


class TestGracefulShutdown:
    def test_interrupt_flushes_partial_results(self, tmp_path):
        """^C mid-campaign drains, persists the completed prefix and raises."""
        from repro.campaign.runner import CampaignInterrupted

        spec = make_spec(seeds=2)
        store = ResultStore(tmp_path)

        def interrupt_after_two(done, _total, _record):
            if done == 2:
                raise KeyboardInterrupt

        runner = CampaignRunner(spec, store=store, progress=interrupt_after_two)
        with pytest.raises(CampaignInterrupted) as excinfo:
            runner.run(workers=1)
        partial = excinfo.value.result
        assert partial.interrupted
        assert len(partial.records) == 2
        # The completed prefix reached the store, and meta records the abort.
        lines = store.runs_path(spec.name).read_text().strip().splitlines()
        assert len(lines) == 2
        assert store.load_meta(spec.name)["interrupted"] is True

    def test_resume_completes_an_interrupted_campaign(self, tmp_path):
        from repro.campaign.runner import CampaignInterrupted

        spec = make_spec(seeds=2)
        store = ResultStore(tmp_path)

        def interrupt_after_two(done, _total, _record):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(CampaignInterrupted):
            CampaignRunner(spec, store=store, progress=interrupt_after_two).run(
                workers=1
            )
        result = CampaignRunner(spec, store=store).run(workers=1, resume=True)
        assert result.skipped == 2
        assert len(result.records) == 2
        # The final store holds the full grid exactly once, rows matching a
        # clean serial run line-for-line (resume appends, so order may not).
        reference = make_spec(seeds=2, name="reference")
        CampaignRunner(reference, store=store).run(workers=1)
        resumed = store.runs_path(spec.name).read_text().strip().splitlines()
        clean = store.runs_path("reference").read_text().strip().splitlines()
        assert sorted(resumed) == sorted(clean)


class TestPoolResume:
    def test_resume_is_a_noop_on_a_complete_campaign(self, tmp_path):
        spec = make_spec(seeds=2)
        store = ResultStore(tmp_path)
        CampaignRunner(spec, store=store).run(workers=1)
        before = store.runs_path(spec.name).read_bytes()
        result = CampaignRunner(spec, store=store).run(workers=1, resume=True)
        assert result.skipped == 4
        assert result.records == []
        assert store.runs_path(spec.name).read_bytes() == before

    def test_resume_without_prior_rows_runs_everything(self, tmp_path):
        spec = make_spec(seeds=1)
        store = ResultStore(tmp_path)
        result = CampaignRunner(spec, store=store).run(workers=1, resume=True)
        assert result.skipped == 0
        assert len(result.records) == 2

    def test_cli_resume_flag(self, tmp_path, capsys):
        argv = [
            "campaign", "run", "--scenarios", "baseline-dynamic", "--seeds", "1",
            "--results-dir", str(tmp_path), "--name", "r", "--quiet",
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "0 runs (1 resumed)" in out

    def test_unknown_backend_is_an_error(self, tmp_path):
        spec = make_spec(seeds=1)
        with pytest.raises(ValueError, match="known backends"):
            CampaignRunner(spec).run(workers=1, backend="slurm")
