"""Federated metric collection: aggregates plus per-cluster breakdowns.

The headline :class:`~repro.metrics.collector.SimulationMetrics` of a
federated run aggregate over every member (capacity is the combined node
count, allocations of all members count) via
:meth:`SimulationMetrics.collect_multi` -- for a 1-cluster federation this
is *exactly* the single-scheduler arithmetic, which the golden regression
suite pins byte-for-byte.

On top of the aggregate, :func:`federation_breakdown` computes the
per-cluster columns the result store persists: how many applications the
meta-scheduler routed to each member, each member's allocated node-seconds
inside the measurement window, and its utilisation relative to its own
capacity.  Keys are flat (``fed_util_pct[name]``-style) so they ride along
with every other metric through the campaign layer's medians and reports.
"""
from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..apps.nea import AmrApplication
from ..apps.psa import ParameterSweepApplication
from ..core.types import RequestType
from ..metrics.collector import (
    SimulationMetrics,
    clip_node_seconds,
    measurement_window_start,
)
from .federation import Federation

__all__ = ["collect_federated", "federation_breakdown"]


def collect_federated(
    federation: Federation,
    amr: Optional[AmrApplication] = None,
    psas: Sequence[ParameterSweepApplication] = (),
    horizon: Optional[float] = None,
) -> SimulationMetrics:
    """Aggregate :class:`SimulationMetrics` over every federation member."""
    return SimulationMetrics.collect_multi(
        federation.rms_list(), amr=amr, psas=psas, horizon=horizon
    )


def federation_breakdown(
    federation: Federation,
    metrics: SimulationMetrics,
    amr: Optional[AmrApplication] = None,
) -> Dict[str, float]:
    """Flat per-cluster metric columns of one federated run.

    Uses the same measurement window as *metrics* (the aggregate collected
    from this federation -- shared helpers on the collector define both), so
    per-cluster allocations sum to the aggregate's
    ``total_allocated_node_seconds``.
    """
    window_start = measurement_window_start(amr)
    horizon = metrics.horizon
    window_end = window_start + horizon

    routed = federation.routed_counts()
    breakdown: Dict[str, float] = {
        "fed_clusters": float(len(federation.members)),
        "fed_total_nodes": float(federation.total_nodes()),
    }
    for member in federation.members:
        allocated = sum(
            clip_node_seconds(rec, window_start, window_end)
            for rec in member.rms.accountant.records
            if rec.rtype is not RequestType.PREALLOCATION
        )
        member_capacity = member.capacity * horizon
        name = member.name
        breakdown[f"fed_nodes[{name}]"] = float(member.capacity)
        breakdown[f"fed_routed[{name}]"] = float(routed[name])
        breakdown[f"fed_alloc_node_seconds[{name}]"] = allocated
        breakdown[f"fed_util_pct[{name}]"] = (
            100.0 * allocated / member_capacity if member_capacity > 0 else 0.0
        )
    return breakdown
