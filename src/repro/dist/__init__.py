"""Distributed campaign execution: coordinator/worker runs over RPC.

The execution tier that scales campaigns past one multiprocessing pool:
a :class:`~repro.dist.coordinator.Coordinator` owns a durable
:class:`~repro.dist.workqueue.WorkQueue` of run units and serves pull-based
workers over one of three interchangeable transports (in-thread loopback,
subprocess pipes, TCP with length-prefixed JSON frames).  Determinism is
preserved end to end: leases interleave freely, but results are keyed by
idempotency key and reassembled in canonical order, so store rows are
byte-identical to a serial run at any worker count.

Entry points: ``campaign run --backend dist`` (embedded coordinator +
launched workers) and the ``python -m repro dist`` command group
(standalone coordinator, external TCP workers, live status).
"""
from .coordinator import Coordinator, DistConfig, DistOutcome
from .transport import TRANSPORT_NAMES, ChannelClosed, make_transport
from .worker import run_standalone_worker, worker_loop
from .workqueue import WorkQueue, completed_keys_from_journal

__all__ = [
    "Coordinator",
    "DistConfig",
    "DistOutcome",
    "TRANSPORT_NAMES",
    "ChannelClosed",
    "make_transport",
    "worker_loop",
    "run_standalone_worker",
    "WorkQueue",
    "completed_keys_from_journal",
    "ensure_noop_runner",
]

#: Name of the no-op scenario runner used by dispatch-overhead benchmarks.
NOOP_RUNNER = "dist-noop"


def ensure_noop_runner() -> str:
    """Register the benchmark no-op runner (idempotent); returns its name.

    The runner does no simulation at all -- it returns a constant metric
    dict -- so campaigns built on it measure pure dispatch overhead:
    queue bookkeeping, RPC round-trips and record reassembly.
    """
    from ..campaign.registry import register_runner, runner_names

    if NOOP_RUNNER not in runner_names():
        @register_runner(NOOP_RUNNER)
        def _noop(spec, seed):  # pragma: no cover - trivial
            return {"noop": 1.0, "seed": float(seed)}

    return NOOP_RUNNER
