"""Queue-ordering stages: FCFS, SJF, largest-area-first and fair-share.

Every strategy returns a *stable* permutation of the applications, so two
scheduling passes over the same state produce the same order -- a
precondition for the campaign determinism guarantees.  Ties always break by
connection order, which is also what makes FCFS the identity.
"""
from __future__ import annotations

import math
from typing import List, Mapping, Sequence

from ..core.request_set import ApplicationRequests
from .base import OrderingStrategy, SchedulingContext

__all__ = [
    "FcfsOrdering",
    "ShortestJobFirstOrdering",
    "LargestAreaFirstOrdering",
    "FairShareOrdering",
    "pending_area",
    "shortest_pending_duration",
]

#: Horizon used to bound the area of open-ended requests (pre-allocations
#: and infinite-duration requests) when computing job areas: one week.
AREA_HORIZON_SECONDS = 7 * 86_400.0


def _pending_non_preemptive(app: ApplicationRequests) -> List:
    """Pending requests the non-preemptive pass will try to place."""
    out = list(app.preallocations.pending())
    out.extend(app.non_preemptible.pending())
    return out


def shortest_pending_duration(app: ApplicationRequests) -> float:
    """Duration of the shortest pending non-preemptive request (inf if none)."""
    durations = [r.duration for r in _pending_non_preemptive(app)]
    finite = [d for d in durations if not math.isinf(d)]
    if finite:
        return min(finite)
    return math.inf


def pending_area(app: ApplicationRequests) -> float:
    """Total area (node x seconds) of the pending non-preemptive requests.

    Open-ended durations are capped at :data:`AREA_HORIZON_SECONDS` so a
    single infinite pre-allocation cannot dwarf every finite job.
    """
    return sum(
        r.node_count * min(r.duration, AREA_HORIZON_SECONDS)
        for r in _pending_non_preemptive(app)
    )


class FcfsOrdering(OrderingStrategy):
    """Connection order -- the paper's discipline (and the identity)."""

    name = "fcfs"

    def order(
        self, applications: Mapping[str, ApplicationRequests], ctx: SchedulingContext
    ) -> List[str]:
        return list(applications)


class ShortestJobFirstOrdering(OrderingStrategy):
    """Applications with the shortest pending request first."""

    name = "sjf"

    def order(
        self, applications: Mapping[str, ApplicationRequests], ctx: SchedulingContext
    ) -> List[str]:
        return sorted(
            applications, key=lambda app_id: shortest_pending_duration(applications[app_id])
        )

    def order_jobs(self, jobs: Sequence) -> List:
        return sorted(jobs, key=lambda job: (job.duration, job.submit_time))


class LargestAreaFirstOrdering(OrderingStrategy):
    """Applications with the largest pending area (node x seconds) first.

    Serving big jobs first gives them the earliest reservations; small jobs
    then backfill around them, which favours throughput-heavy workloads.
    """

    name = "largest-area"

    def order(
        self, applications: Mapping[str, ApplicationRequests], ctx: SchedulingContext
    ) -> List[str]:
        return sorted(
            applications, key=lambda app_id: -pending_area(applications[app_id])
        )

    def order_jobs(self, jobs: Sequence) -> List:
        return sorted(jobs, key=lambda job: (-job.node_count * job.duration, job.submit_time))


class FairShareOrdering(OrderingStrategy):
    """Applications that consumed the fewest node-seconds so far go first.

    The accumulated usage comes from the RMS accountant
    (:meth:`repro.core.accounting.Accountant.used_node_seconds_by_app`);
    applications without any recorded usage count as zero, so newcomers are
    served ahead of long-running resource hogs.
    """

    name = "fair-share"
    needs_usage = True

    def order(
        self, applications: Mapping[str, ApplicationRequests], ctx: SchedulingContext
    ) -> List[str]:
        return sorted(
            applications, key=lambda app_id: float(ctx.usage.get(app_id, 0.0))
        )
