"""Integration test: a mixed workload of every application type at once.

Section 4 argues that the CooRMv2 interface supports rigid, moldable,
malleable and evolving applications side by side.  This test runs one of
each on a single cluster and checks that everybody completes, that resources
are conserved at all times and that the malleable application ends up
yielding to the others when needed.
"""
from __future__ import annotations


import numpy as np
import pytest

from repro.apps import (
    AmrApplication,
    EvolutionPhase,
    FullyPredictableEvolvingApplication,
    MalleableApplication,
    MoldableApplication,
    ParameterSweepApplication,
    RigidApplication,
)
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.models import WorkingSetEvolution
from repro.sim import Simulator
from repro.workloads import WorkloadParameters, generate_rigid_workload
from repro.baselines import BatchSchedulerBaseline


class TestMixedWorkload:
    def test_every_application_type_runs_to_completion(self):
        sim = Simulator()
        platform = Platform.single_cluster(64)
        rms = CooRMv2(platform, sim, rescheduling_interval=1.0)

        evolution = WorkingSetEvolution(np.linspace(5_000.0, 60_000.0, 12))
        amr = AmrApplication("amr", evolution, preallocation_nodes=24)
        psa = ParameterSweepApplication("psa", task_duration=40.0)
        rigid = RigidApplication("rigid", node_count=8, duration=300.0)
        moldable = MoldableApplication(
            "moldable", candidate_node_counts=[2, 4, 8], walltime_model=lambda n: 800.0 / n
        )
        malleable = MalleableApplication("malleable", min_nodes=2, duration=500.0)
        evolving = FullyPredictableEvolvingApplication(
            "evolving", phases=[EvolutionPhase(2, 200.0), EvolutionPhase(6, 200.0)]
        )

        apps = [amr, psa, rigid, moldable, malleable, evolving]
        amr.on_finished = lambda _app: psa.shutdown()
        for app in apps:
            app.connect(rms)

        sim.run(until=50_000.0)

        for app in apps:
            assert app.finished(), f"{app.name} did not finish"
            assert not app.killed
        assert platform.cluster("cluster0").free_count() == 64
        assert psa.stats.completed_tasks > 0

    def test_rigid_stream_through_coormv2_matches_cbf_baseline(self):
        """A pure rigid workload scheduled by CooRMv2 behaves like FCFS+CBF."""
        jobs = generate_rigid_workload(
            WorkloadParameters(job_count=12, max_nodes=16, mean_interarrival=200.0,
                               runtime_log_sigma=0.5),
            seed=5,
        )
        # Baseline: the standalone conservative back-filling queue.
        baseline = BatchSchedulerBaseline(32)
        baseline.run(jobs)

        # The same jobs as rigid applications under the full RMS.
        sim = Simulator()
        platform = Platform.single_cluster(32)
        rms = CooRMv2(platform, sim, rescheduling_interval=1.0)
        apps = []
        for job in jobs:
            app = RigidApplication(job.job_id, node_count=job.node_count, duration=job.duration)
            sim.schedule_at(job.submit_time, app.connect, rms)
            apps.append(app)
        sim.run()

        for app in apps:
            assert app.finished()
        assert platform.cluster("cluster0").free_count() == 32

        # Makespans agree within the re-scheduling latency (one pass per event).
        rms_makespan = max(app.finished_at for app in apps)
        assert rms_makespan == pytest.approx(baseline.makespan(), rel=0.1)

    def test_two_evolving_applications_queue_for_preallocations(self):
        """Two NEAs whose pre-allocations cannot fit together are serialised,
        so that each one's updates remain guaranteed (Section 4)."""
        sim = Simulator()
        platform = Platform.single_cluster(32)
        rms = CooRMv2(platform, sim, rescheduling_interval=1.0)

        evolution = WorkingSetEvolution(np.linspace(5_000.0, 40_000.0, 8))
        first = AmrApplication(
            "first", evolution, preallocation_nodes=20, preallocation_duration=50_000.0
        )
        second = AmrApplication(
            "second", evolution, preallocation_nodes=20, preallocation_duration=50_000.0
        )
        first.connect(rms)
        second.connect(rms)
        sim.run(until=200_000.0)

        assert first.finished() and second.finished()
        # Their computations must not have overlapped: the second starts only
        # after the first released its pre-allocation.
        assert second.computation_started_at >= first.finished_at - 1e-6
        assert platform.cluster("cluster0").free_count() == 32
