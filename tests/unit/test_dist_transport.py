"""Transport layer: framing, endpoints, channel round trips, EOF signalling.

Each backend is exercised at the message level -- send a flat dict one way,
read it back on the other side -- plus the failure paths the coordinator
relies on: a closed peer surfaces as ``(channel, None)`` from ``poll`` and
as :class:`ChannelClosed` from a worker-side ``recv``.
"""
from __future__ import annotations

import json
import multiprocessing
import socket
import struct

import pytest

from repro.dist.transport import (
    MAX_FRAME_BYTES,
    ChannelClosed,
    IpcTransport,
    PipeChannel,
    TcpTransport,
    ThreadTransport,
    connect_tcp,
    encode_frame,
    make_transport,
    parse_endpoint,
)


class TestFraming:
    def test_frame_is_length_prefixed_sorted_json(self):
        frame = encode_frame({"b": 2, "a": 1})
        (length,) = struct.unpack(">I", frame[:4])
        assert length == len(frame) - 4
        assert json.loads(frame[4:].decode("utf-8")) == {"a": 1, "b": 2}
        assert frame[4:] == b'{"a": 1, "b": 2}'

    def test_nan_is_rejected_on_the_wire(self):
        with pytest.raises(ValueError):
            encode_frame({"x": float("nan")})

    def test_oversized_frame_is_rejected(self):
        with pytest.raises(ValueError, match="exceeds"):
            encode_frame({"x": "y" * (MAX_FRAME_BYTES + 1)})

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:7717") == ("127.0.0.1", 7717)
        with pytest.raises(ValueError, match="host:port"):
            parse_endpoint("no-port")
        with pytest.raises(ValueError, match="host:port"):
            parse_endpoint(":123x")


class TestMakeTransport:
    def test_known_names(self):
        for name, cls in (
            ("thread", ThreadTransport),
            ("ipc", IpcTransport),
            ("tcp", TcpTransport),
        ):
            transport = make_transport(name)
            assert isinstance(transport, cls)
            assert transport.name == name
            transport.close()

    def test_unknown_name_has_helpful_error(self):
        with pytest.raises(KeyError, match="known transports"):
            make_transport("carrier-pigeon")


class TestPipeChannel:
    def test_round_trip_is_json_bytes(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        a, b = PipeChannel(parent), PipeChannel(child)
        a.send({"op": "lease", "worker": "w0"})
        assert b.recv(1.0) == {"op": "lease", "worker": "w0"}
        # The wire carries encoded JSON, never pickles.
        b._conn.send_bytes(b'{"op": "ack"}')
        assert a.recv(1.0) == {"op": "ack"}

    def test_recv_timeout_returns_none(self):
        parent, _child = multiprocessing.Pipe(duplex=True)
        assert PipeChannel(parent).recv(0.01) is None

    def test_closed_peer_raises(self):
        parent, child = multiprocessing.Pipe(duplex=True)
        PipeChannel(child).close()
        with pytest.raises(ChannelClosed):
            PipeChannel(parent).recv(0.5)


class TestTcpTransport:
    def test_worker_round_trip_and_eof(self):
        transport = TcpTransport(bind="127.0.0.1:0")
        host, port = parse_endpoint(transport.endpoint())
        channel = connect_tcp(host, port)
        channel.send({"op": "lease", "worker": "w0"})
        # First poll accepts the connection, subsequent polls read frames.
        messages = []
        for _ in range(20):
            messages = [m for _end, m in transport.poll(0.1) if m is not None]
            if messages:
                break
        assert messages == [{"op": "lease", "worker": "w0"}]
        end = transport._clients[0]
        end.send({"op": "grant", "key": "k0", "task": {}})
        assert channel.recv(1.0) == {"op": "grant", "key": "k0", "task": {}}
        channel.close()
        eof = []
        for _ in range(20):
            eof = [m for _end, m in transport.poll(0.1)]
            if eof:
                break
        assert eof == [None]
        transport.close()

    def test_two_frames_in_one_segment_are_both_delivered(self):
        transport = TcpTransport(bind="127.0.0.1:0")
        host, port = parse_endpoint(transport.endpoint())
        sock = socket.create_connection((host, port))
        sock.sendall(encode_frame({"op": "a"}) + encode_frame({"op": "b"}))
        received = []
        for _ in range(20):
            received += [m for _end, m in transport.poll(0.1) if m is not None]
            if len(received) == 2:
                break
        assert received == [{"op": "a"}, {"op": "b"}]
        sock.close()
        transport.close()

    def test_oversized_announced_frame_disconnects_the_client(self):
        transport = TcpTransport(bind="127.0.0.1:0")
        host, port = parse_endpoint(transport.endpoint())
        sock = socket.create_connection((host, port))
        sock.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        outcome = []
        for _ in range(20):
            outcome = [m for _end, m in transport.poll(0.1)]
            if outcome:
                break
        assert outcome == [None]
        sock.close()
        transport.close()


class TestThreadTransport:
    def test_poll_drains_all_queued_messages(self):
        # Use the channel machinery directly (without launching a real
        # worker loop) by reaching into the transport's shared inbox.
        transport = ThreadTransport()
        transport._inbox.put(("end-a", {"op": "lease"}))
        transport._inbox.put(("end-b", {"op": "heartbeat"}))
        messages = transport.poll(0.1)
        assert [m for _end, m in messages] == [{"op": "lease"}, {"op": "heartbeat"}]
        assert transport.poll(0.01) == []
        transport.close()
