"""Golden regression of the deterministic trace export and its analytics.

The fixtures under ``tests/data/golden_obs/`` pin the byte-exact JSONL
trace of the fig9 scenario at its canonical campaign seed, plus the
byte-exact timeline and job-audit analytics derived from it (see
``generate_obs_golden.py``).  A drifting digest means the engine's event
order, the scheduler's decisions, the instrumentation or the analytics
changed -- all of which invalidate recorded traces and must be explicit.
"""
from __future__ import annotations

import json

import pytest

from tests.regression.generate_obs_golden import (
    GOLDEN_OBS_DIR,
    TRACED_SCENARIO,
    golden_digests,
)


def load_fixture(kind: str = "trace") -> dict:
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_{kind}.json"
    assert path.is_file(), (
        f"missing golden {kind} fixture {path}; run "
        "'PYTHONPATH=src python tests/regression/generate_obs_golden.py'"
    )
    return json.loads(path.read_text(encoding="utf-8"))


@pytest.fixture(scope="module")
def fresh_digests() -> tuple:
    """One traced scenario run shared by every assertion in this module."""
    return golden_digests()


@pytest.fixture(scope="module")
def fresh(fresh_digests: tuple) -> dict:
    return fresh_digests[0]


@pytest.fixture(scope="module")
def fresh_analytics(fresh_digests: tuple) -> dict:
    return fresh_digests[1]


def _dispatch_labels(head_lines) -> list:
    labels = []
    for line in head_lines:
        event = json.loads(line)
        if event.get("cat") == "engine" and event.get("name") == "dispatch":
            labels.append(event["args"]["callback"])
    return labels


def test_trace_export_matches_golden_digest(fresh: dict) -> None:
    fixture = load_fixture()

    assert fresh["seed"] == fixture["seed"], "seed derivation changed"
    assert fresh["event_count"] == fixture["event_count"]
    assert fresh["count_by"] == fixture["count_by"], (
        "per-event-type counts drifted; the instrumentation or the "
        "simulation behaviour changed"
    )
    assert fresh["head"] == fixture["head"], "leading trace events changed"
    assert fresh["sha256"] == fixture["sha256"], (
        "trace bytes drifted despite identical counts -- event ordering or "
        "argument values changed"
    )


def test_dispatch_labels_match_golden(fresh: dict) -> None:
    """Memoized callback labels must equal the labels pinned in the golden.

    The label cache keys on code objects; if it ever returned a stale or
    identity-dependent string, the dispatch events would drift here first.
    """
    fixture = load_fixture()
    expected = _dispatch_labels(fixture["head"])
    actual = _dispatch_labels(fresh["head"])
    assert actual == expected, "engine dispatch callback labels drifted"


def test_analytics_match_golden_digest(fresh_analytics: dict) -> None:
    """Timeline and audit bytes derived from the trace are pinned too.

    The analytics are pure functions of the trace, so this digest can only
    drift when the trace itself drifted (caught above) or when the
    timeline/lifecycle derivation changed -- either way the recorded
    analytics of past campaigns are invalidated and the change must be
    deliberate.
    """
    fixture = load_fixture("analytics")

    assert fresh_analytics["seed"] == fixture["seed"], "seed derivation changed"
    assert fresh_analytics["timeline_series"] == fixture["timeline_series"], (
        "the set of timeline series changed"
    )
    assert fresh_analytics["jobs"] == fixture["jobs"]
    assert fresh_analytics["wait_p95"] == fixture["wait_p95"]
    assert fresh_analytics["node_seconds"] == fixture["node_seconds"]
    assert fresh_analytics["timeline_sha256"] == fixture["timeline_sha256"], (
        "timeline bytes drifted -- sampling grid or series derivation changed"
    )
    assert fresh_analytics["audits_sha256"] == fixture["audits_sha256"], (
        "job-audit bytes drifted -- lifecycle derivation changed"
    )
