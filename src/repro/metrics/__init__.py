"""Metrics collection and plain-text reporting for simulation results."""
from .collector import SimulationMetrics, median_summary, summarize_runs
from .report import format_percent, format_series, format_table

__all__ = [
    "SimulationMetrics",
    "summarize_runs",
    "median_summary",
    "format_percent",
    "format_series",
    "format_table",
]
