"""The platform: the set of clusters managed by one RMS instance.

The paper's evaluation uses a single large homogeneous cluster
(Section 5.1.3), but the RMS interface is multi-cluster (requests carry a
cluster id and views have one profile per cluster), so the substrate supports
any number of clusters.
"""
from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from ..core.errors import AllocationError
from ..core.types import ClusterId, NodeId, Time
from .cluster import Cluster

__all__ = ["Platform"]


class Platform:
    """A collection of named clusters."""

    def __init__(self, clusters: Mapping[ClusterId, int]):
        if not clusters:
            raise AllocationError("a platform needs at least one cluster")
        self.clusters: Dict[ClusterId, Cluster] = {
            cid: Cluster(cid, n) for cid, n in clusters.items()
        }

    @classmethod
    def single_cluster(cls, node_count: int, cluster_id: ClusterId = "cluster0") -> "Platform":
        """The paper's evaluation platform: one homogeneous cluster."""
        return cls({cluster_id: node_count})

    # ------------------------------------------------------------------ #
    def capacity(self) -> Dict[ClusterId, int]:
        """Cluster id -> total node count (what the scheduler needs)."""
        return {cid: c.node_count for cid, c in self.clusters.items()}

    def total_nodes(self) -> int:
        return sum(c.node_count for c in self.clusters.values())

    def cluster(self, cluster_id: ClusterId) -> Cluster:
        try:
            return self.clusters[cluster_id]
        except KeyError:
            raise AllocationError(f"unknown cluster {cluster_id!r}") from None

    def default_cluster_id(self) -> ClusterId:
        """The id of the first cluster (convenient for single-cluster setups)."""
        return next(iter(self.clusters))

    # ------------------------------------------------------------------ #
    def allocate(
        self,
        cluster_id: ClusterId,
        count: int,
        app_id: str,
        request_id: int,
        now: Time,
        preferred: Optional[Iterable[NodeId]] = None,
    ):
        """Allocate nodes on one cluster (delegates to :class:`Cluster`)."""
        return self.cluster(cluster_id).allocate(count, app_id, request_id, now, preferred)

    def release(self, cluster_id: ClusterId, node_ids: Iterable[NodeId], now: Time) -> None:
        self.cluster(cluster_id).release(node_ids, now)

    def release_all_of(self, app_id: str, now: Time) -> Dict[ClusterId, frozenset]:
        """Release every node held by an application, on every cluster."""
        return {cid: c.release_all_of(app_id, now) for cid, c in self.clusters.items()}

    def busy_node_seconds(self, now: Time) -> float:
        return sum(c.busy_node_seconds(now) for c in self.clusters.values())

    def __repr__(self) -> str:
        inner = ", ".join(f"{cid}={c.node_count}" for cid, c in self.clusters.items())
        return f"Platform({inner})"
