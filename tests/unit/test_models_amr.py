"""Unit tests of the AMR working-set evolution model (paper Section 2.1)."""
from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    AmrEvolutionParameters,
    WorkingSetEvolution,
    normalized_profile,
    working_set_profile,
)


class TestParameters:
    def test_defaults_match_the_paper(self):
        p = AmrEvolutionParameters()
        assert p.num_steps == 1000
        assert p.phase_min_steps == 1
        assert p.phase_max_steps == 200
        assert p.acceleration == pytest.approx(0.01)
        assert p.deceleration_factor == pytest.approx(0.95)
        assert p.noise_sigma == pytest.approx(2.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_steps": 0},
            {"phase_min_steps": 0},
            {"phase_min_steps": 10, "phase_max_steps": 5},
            {"acceleration": 0.0},
            {"deceleration_factor": 1.5},
            {"noise_sigma": -1.0},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AmrEvolutionParameters(**kwargs)


class TestNormalizedProfile:
    def test_length_and_normalisation(self):
        profile = normalized_profile(seed=0)
        assert len(profile) == 1000
        assert profile.max() == pytest.approx(1000.0)
        assert profile.min() >= 0.0

    def test_reproducible_from_seed(self):
        assert np.allclose(normalized_profile(seed=3), normalized_profile(seed=3))
        assert not np.allclose(normalized_profile(seed=3), normalized_profile(seed=4))

    def test_profile_is_mostly_increasing(self):
        # The paper extracts "mostly increasing" as the first qualitative
        # feature of published AMR evolutions.
        profile = normalized_profile(seed=1)
        diffs = np.diff(profile)
        assert np.mean(diffs >= 0) > 0.5
        assert profile[-1] > 0.5 * profile.max()

    def test_profile_has_plateaus_and_jumps(self):
        profile = normalized_profile(seed=2)
        diffs = np.diff(profile)
        # Plateaus: a noticeable fraction of near-flat steps.
        assert np.mean(np.abs(diffs) < 3.0) > 0.05
        # Sudden increases: some steps clearly larger than the typical step.
        assert diffs.max() > 2 * max(np.median(np.abs(diffs)), 1e-9)

    def test_custom_step_count(self):
        profile = normalized_profile(seed=0, params=AmrEvolutionParameters(num_steps=50))
        assert len(profile) == 50
        assert profile.max() == pytest.approx(1000.0)


class TestWorkingSetProfile:
    def test_scaling_to_peak(self):
        profile = working_set_profile(2048.0, seed=5)
        assert profile.max() == pytest.approx(2048.0)
        assert profile.min() >= 0.0

    def test_requires_positive_peak(self):
        with pytest.raises(ValueError):
            working_set_profile(0.0, seed=5)


class TestWorkingSetEvolution:
    def test_generate_and_access(self):
        ev = WorkingSetEvolution.generate(1000.0, seed=7, params=AmrEvolutionParameters(num_steps=100))
        assert ev.num_steps == 100
        assert len(ev) == 100
        assert ev.peak_size_mib == pytest.approx(1000.0)
        assert ev.size_at(0) == pytest.approx(float(ev.sizes_mib[0]))
        assert list(ev)[3] == pytest.approx(ev.size_at(3))

    def test_out_of_range_step_rejected(self):
        ev = WorkingSetEvolution([1.0, 2.0])
        with pytest.raises(IndexError):
            ev.size_at(2)
        with pytest.raises(IndexError):
            ev.size_at(-1)

    def test_rejects_invalid_series(self):
        with pytest.raises(ValueError):
            WorkingSetEvolution([])
        with pytest.raises(ValueError):
            WorkingSetEvolution([1.0, -2.0])
