"""Federation routing + multi-cluster scheduling throughput.

Two questions, mirroring ``bench_scheduler_throughput.py``:

* how fast can the meta-scheduler *place* incoming applications?  Every
  registered routing policy routes a burst of rigid applications into a
  3-cluster federation; the floor is the paper's 500 requests/second figure
  (Section 3.2) -- placement is one decision per request, so a meta-
  scheduler slower than the per-cluster scheduler would be the bottleneck;
* how fast does a *whole federated simulation* run?  A contended rigid
  stream is fanned into the heterogeneous built-in topology and driven to
  completion across all three member schedulers on one shared event
  engine, with an explicit jobs-per-second floor.
"""
from __future__ import annotations

import pytest

from repro.apps.rigid import RigidApplication
from repro.federation import (
    Federation,
    get_topology,
    locality_group,
    routing_names,
)
from repro.metrics import format_table
from repro.sim import Simulator

#: Placement must beat the paper's request-handling figure.
ROUTING_FLOOR_PER_SECOND = 500
#: End-to-end federated simulation floor (jobs simulated per wall second);
#: the measured figure is ~70 jobs/s, the floor leaves CI headroom.
SIMULATION_FLOOR_JOBS_PER_SECOND = 10


def build_federation(routing: str):
    simulator = Simulator()
    topology = get_topology("hetero3").with_routing(routing)
    return Federation(topology, simulator, seed=1), simulator


@pytest.mark.parametrize("routing", routing_names())
def test_routing_submit_throughput(benchmark, routing):
    """Route-and-connect a burst of applications; report placements/s."""
    count = 300

    def route_burst():
        federation, _simulator = build_federation(routing)
        for i in range(count):
            app = RigidApplication(f"job{i}", node_count=1 + i % 16, duration=1e9)
            federation.submit(
                app, node_count=app.node_count, group=locality_group(app.name)
            )
        return federation

    federation = benchmark(route_burst)
    seconds = benchmark.stats.stats.mean
    throughput = count / seconds if seconds > 0 else float("inf")
    print()
    print(
        format_table(
            ["routing", "placements", "burst time (s)", "placements/s"],
            [(routing, count, f"{seconds:.4f}", f"{throughput:,.0f}")],
        )
    )
    assert sum(federation.routed_counts().values()) == count
    assert throughput > ROUTING_FLOOR_PER_SECOND, (
        f"routing {routing} fell below the {ROUTING_FLOOR_PER_SECOND}/s floor"
    )


def test_federated_simulation_throughput(benchmark):
    """Drive a contended rigid stream across 3 clusters to completion."""
    jobs = 80

    def run_federated():
        simulator = Simulator()
        federation = Federation(get_topology("hetero3"), simulator, seed=1)
        apps = []

        def submit(index: int) -> None:
            app = RigidApplication(
                f"job{index}", node_count=1 + index % 8, duration=60.0
            )
            federation.submit(
                app, node_count=app.node_count, group=locality_group(app.name)
            )
            apps.append(app)

        for i in range(jobs):
            simulator.schedule_at(i * 2.0, submit, i)
        simulator.run()
        return federation, apps

    (federation, apps) = benchmark(run_federated)
    seconds = benchmark.stats.stats.mean
    throughput = jobs / seconds if seconds > 0 else float("inf")
    print()
    print(
        format_table(
            ["clusters", "jobs", "sim time (s)", "jobs/s"],
            [(len(federation.members), jobs, f"{seconds:.4f}", f"{throughput:,.0f}")],
        )
    )
    assert all(app.finished() for app in apps)
    assert throughput > SIMULATION_FLOOR_JOBS_PER_SECOND, (
        f"federated simulation fell below the "
        f"{SIMULATION_FLOOR_JOBS_PER_SECOND} jobs/s floor"
    )
