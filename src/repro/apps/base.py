"""Base class of simulated applications.

Applications are the client side of the CooRMv2 protocol: they connect to the
RMS, submit ``request()`` / ``done()`` messages and react to the views and
start notifications the RMS pushes.  :class:`BaseApplication` implements the
plumbing every application type shares -- connection management, bookkeeping
of held nodes, the two high-level operations of Section 3.1.3 (*spontaneous
update* and *announced update*) -- so the concrete classes in this package
only encode behaviour.
"""
from __future__ import annotations

import math
from typing import FrozenSet, Optional, Callable, Tuple

from ..core.errors import ProtocolError
from ..core.request import Request
from ..core.rms import CooRMv2
from ..core.types import ClusterId, NodeId, RelatedHow, RequestType, Time
from ..core.view import View

__all__ = ["BaseApplication"]


class BaseApplication:
    """Common machinery of every simulated application.

    Parameters
    ----------
    name:
        Identifier used as the RMS application id (must be unique per RMS).
    cluster_id:
        Cluster this application requests resources on (the evaluation uses a
        single cluster).
    """

    def __init__(self, name: str, cluster_id: ClusterId = "cluster0"):
        self.name = name
        self.cluster_id = cluster_id
        self.rms: Optional[CooRMv2] = None
        self.connected_at: Time = math.nan
        self.finished_at: Time = math.nan
        self.killed = False
        self.kill_reason: Optional[str] = None
        #: Latest views pushed by the RMS.
        self.non_preemptive_view: Optional[View] = None
        self.preemptive_view: Optional[View] = None
        #: Called (with the application) when the application finishes.
        self.on_finished: Optional[Callable[["BaseApplication"], None]] = None

    # ------------------------------------------------------------------ #
    # Connection and submission helpers
    # ------------------------------------------------------------------ #
    def connect(self, rms: CooRMv2) -> None:
        """Open a session with *rms*; triggers the first view push."""
        self.rms = rms
        rms.connect(self, app_id=self.name)
        self.connected_at = rms.now

    def disconnect(self) -> None:
        """Close the session (all outstanding requests are terminated)."""
        if self.rms is not None and not self.killed:
            self.rms.disconnect(self.name)

    @property
    def now(self) -> Time:
        if self.rms is None:
            raise ProtocolError(f"application {self.name!r} is not connected")
        return self.rms.now

    def submit(
        self,
        node_count: int,
        duration: Time,
        rtype: RequestType,
        related_how: RelatedHow = RelatedHow.FREE,
        related_to: Optional[Request] = None,
    ) -> Request:
        """Build and submit a request on this application's cluster."""
        if self.rms is None:
            raise ProtocolError(f"application {self.name!r} is not connected")
        request = Request(
            cluster_id=self.cluster_id,
            node_count=node_count,
            duration=duration,
            rtype=rtype,
            related_how=related_how,
            related_to=related_to,
            app_id=self.name,
        )
        return self.rms.submit(self.name, request)

    def done(self, request: Request, released_node_ids=None) -> None:
        """Terminate *request* immediately (the protocol's ``done()``)."""
        if self.rms is None:
            raise ProtocolError(f"application {self.name!r} is not connected")
        self.rms.done(self.name, request, released_node_ids)

    # ------------------------------------------------------------------ #
    # High-level operations (Section 3.1.3)
    # ------------------------------------------------------------------ #
    def spontaneous_update(
        self,
        current: Request,
        new_node_count: int,
        duration: Time = math.inf,
        released_node_ids=None,
    ) -> Request:
        """Immediately change the allocation size (Figure 6(b)).

        A new request is submitted ``NEXT`` to the current one (so surviving
        node IDs are carried over) and the current request is terminated.
        When shrinking, *released_node_ids* tells the RMS which nodes are
        given back; when omitted, the highest node IDs are released.
        """
        new_request = self.submit(
            node_count=new_node_count,
            duration=duration,
            rtype=current.rtype,
            related_how=RelatedHow.NEXT,
            related_to=current,
        )
        if released_node_ids is None and new_node_count < len(current.node_ids):
            surplus = len(current.node_ids) - new_node_count
            released_node_ids = sorted(current.node_ids)[-surplus:]
        self.done(current, released_node_ids)
        return new_request

    def announced_update(
        self,
        current: Request,
        new_node_count: int,
        announce_interval: Time,
        duration: Time = math.inf,
    ) -> Tuple[Request, Request]:
        """Announce a future change of allocation size (Figure 6(c)).

        A bridge request keeps the current node count for *announce_interval*
        seconds, a second request switches to *new_node_count* afterwards, and
        the current request is terminated.  Returns ``(bridge, future)``.
        """
        if announce_interval <= 0:
            new_request = self.spontaneous_update(current, new_node_count, duration)
            return new_request, new_request
        current_count = len(current.node_ids) if current.started() else current.node_count
        bridge = self.submit(
            node_count=current_count,
            duration=announce_interval,
            rtype=current.rtype,
            related_how=RelatedHow.NEXT,
            related_to=current,
        )
        future = self.submit(
            node_count=new_node_count,
            duration=duration,
            rtype=current.rtype,
            related_how=RelatedHow.NEXT,
            related_to=bridge,
        )
        self.done(current)
        return bridge, future

    # ------------------------------------------------------------------ #
    # Protocol callbacks (overridden by concrete applications)
    # ------------------------------------------------------------------ #
    def on_views(self, non_preemptive: View, preemptive: View) -> None:
        """Record the pushed views; subclasses extend this."""
        self.non_preemptive_view = non_preemptive
        self.preemptive_view = preemptive

    def on_start(self, request: Request, node_ids: FrozenSet[NodeId]) -> None:
        """A request started; subclasses react (default: nothing)."""

    def on_killed(self, reason: str) -> None:
        """The RMS killed this application's session."""
        self.killed = True
        self.kill_reason = reason

    # ------------------------------------------------------------------ #
    # Lifecycle helpers
    # ------------------------------------------------------------------ #
    def finish(self) -> None:
        """Record completion, close the session and fire ``on_finished``."""
        if not math.isnan(self.finished_at):
            return
        self.finished_at = self.now
        self.disconnect()
        if self.on_finished is not None:
            self.on_finished(self)

    def finished(self) -> bool:
        return not math.isnan(self.finished_at)

    def makespan(self) -> float:
        """Connection-to-completion time (NaN until the application finishes)."""
        return self.finished_at - self.connected_at

    # ------------------------------------------------------------------ #
    # View helpers used by several application types
    # ------------------------------------------------------------------ #
    def preemptive_available_now(self) -> int:
        """Node count the preemptive view offers right now."""
        if self.preemptive_view is None or self.rms is None:
            return 0
        return int(self.preemptive_view[self.cluster_id].value_at(self.now))

    def preemptive_available_min(self, window: Time) -> int:
        """Minimum preemptive availability over the next *window* seconds."""
        if self.preemptive_view is None or self.rms is None:
            return 0
        profile = self.preemptive_view[self.cluster_id]
        return int(profile.min_over(self.now, self.now + window))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
