#!/usr/bin/env python
"""Replay a real-format SWF workload trace through a campaign.

The walk-through every trace-driven evaluation follows:

1. **load** a Standard Workload Format file (here the tiny 18-field fixture
   checked into ``tests/data/``; any Parallel Workloads Archive download,
   ``.gz`` included, works the same way);
2. **transform** it -- drop non-completed jobs, clamp node counts into the
   simulated cluster, re-base submit times;
3. **convert** the rigid records into a mix of rigid/moldable/malleable/
   evolving applications so the CooRMv2 protocol has something to adapt;
4. **replay** the converted workload through a deterministic campaign and
   report the stored metrics next to their workload provenance.

Run with::

    PYTHONPATH=src python examples/replay_swf_trace.py
"""
from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    PlatformSpec,
    ResultStore,
    ScenarioSpec,
    TraceSource,
    WorkloadSpec,
)
from repro.metrics import format_table
from repro.traces import AdaptiveMix, convert_trace, load_swf, mix_counts

TRACE_PATH = Path(__file__).parent.parent / "tests" / "data" / "tiny.swf"
CLUSTER_NODES = 64


def main() -> None:
    # --- 1. load ---------------------------------------------------------
    trace = load_swf(TRACE_PATH, strict=False)  # tolerate archive quirks
    print(f"loaded {trace.job_count} jobs from {TRACE_PATH.name}")
    print(f"  MaxNodes={trace.header.max_nodes}  span={trace.span:.0f}s")

    # --- 2/3. transform + convert (preview) ------------------------------
    # The campaign will do this declaratively below; doing it once by hand
    # shows what the scenario's trace source expands to.
    mix = AdaptiveMix(rigid=0.4, moldable=0.2, malleable=0.2, evolving=0.2)
    preview = convert_trace(trace, mix=mix, seed=0, max_nodes=CLUSTER_NODES)
    print("\nadaptive conversion preview:")
    print(format_table(["kind", "jobs"], sorted(mix_counts(preview).items())))

    # --- 4. replay through a campaign ------------------------------------
    scenario = ScenarioSpec(
        name="swf-replay",
        runner="amr_psa",
        description="tiny.swf converted to an adaptive mix",
        platform=PlatformSpec(cluster_nodes=CLUSTER_NODES),
        workload=WorkloadSpec(
            include_amr=False,
            trace=TraceSource(
                path=str(TRACE_PATH),
                transforms=(
                    {"kind": "filter", "statuses": [1]},
                    {"kind": "clamp_nodes", "max_nodes": CLUSTER_NODES},
                    {"kind": "shift_to_zero"},
                ),
                mix=mix.to_dict(),
            ),
        ),
    )
    spec = CampaignSpec(name="swf-replay-demo", scenarios=(scenario,), seeds=2)

    with tempfile.TemporaryDirectory() as results_dir:
        store = ResultStore(results_dir)
        result = CampaignRunner(spec, store=store).run()
        print(
            f"\nreplayed {spec.run_count} runs in {result.elapsed_seconds:.2f}s "
            f"-> {result.store_path}"
        )

        summary = store.summarize("swf-replay-demo")["swf-replay"]
        rows = [(k, v) for k, v in summary.items() if not k.startswith("psa")]
        print(format_table(["metric (median over seeds)", "value"], rows))

        provenance = store.provenance_of("swf-replay-demo")["swf-replay"]
        print(f"\nworkload provenance: {provenance['source']['path']}")
        print(f"  transform chain: "
              f"{' -> '.join(s['kind'] for s in provenance['steps'])}")
        print(f"  realised mix:    {provenance['kind_counts']}")


if __name__ == "__main__":
    main()
