"""The ``python -m repro dist`` command group.

Commands::

    python -m repro dist coordinator --scenarios fig9 --seeds 4 --bind 127.0.0.1:7717
    python -m repro dist worker --connect 127.0.0.1:7717
    python -m repro dist status --connect 127.0.0.1:7717

``dist coordinator`` runs a campaign as a standalone TCP coordinator:
it binds the given endpoint, serves run units to any worker that connects
(plus ``--workers N`` locally launched ones), and persists records exactly
like ``campaign run`` -- same store layout, byte-identical rows.
``dist worker`` joins a running coordinator from another process or host;
``dist status`` asks a running coordinator for its live queue counters.

For single-host campaigns, ``campaign run --backend dist`` wraps all of
this behind one command; this group exists for multi-process and
multi-host topologies where workers outlive or join a campaign midway.
"""
from __future__ import annotations

import argparse
import sys

from ..obs.logsetup import get_logger
from .transport import ChannelClosed, connect_tcp, parse_endpoint

__all__ = ["add_dist_commands", "run_dist_command"]

_LOG = get_logger("dist")

#: Default coordinator endpoint: fixed (not ephemeral) so workers started
#: without flags find it.
DEFAULT_ENDPOINT = "127.0.0.1:7717"


def add_dist_commands(commands: argparse._SubParsersAction) -> None:
    """Attach the ``dist`` command group to the top-level CLI parser."""
    dist = commands.add_parser(
        "dist", help="distributed campaign execution (coordinator/worker)"
    )
    actions = dist.add_subparsers(dest="action", required=True)

    coord = actions.add_parser(
        "coordinator", help="run a campaign as a standalone TCP coordinator"
    )
    coord.add_argument(
        "--scenarios", required=True,
        help="comma-separated built-in scenario names (see 'campaign scenarios')",
    )
    coord.add_argument("--seeds", type=int, default=1, help="replicates per scenario")
    coord.add_argument("--root-seed", type=int, default=0, help="campaign root seed")
    coord.add_argument("--name", help="campaign name (defaults to the scenario list)")
    coord.add_argument("--results-dir", default=None, help="result store root")
    coord.add_argument(
        "--bind", default=DEFAULT_ENDPOINT,
        help=f"TCP endpoint to serve workers on (default {DEFAULT_ENDPOINT})",
    )
    coord.add_argument(
        "--workers", type=int, default=0,
        help="locally launched TCP workers (default 0: external workers only)",
    )
    coord.add_argument(
        "--resume", action="store_true",
        help="skip runs whose idempotency key already has a store row",
    )
    coord.add_argument(
        "--append", action="store_true",
        help="append to existing records instead of replacing them",
    )
    coord.add_argument(
        "--lease-ttl", type=float, default=30.0,
        help="seconds before an unacknowledged lease is reclaimed",
    )
    coord.add_argument(
        "--max-attempts", type=int, default=4,
        help="attempts per run unit before it fails terminally",
    )
    coord.add_argument(
        "--journal", default=None,
        help="append every queue state transition to this JSONL file",
    )
    coord.add_argument("--quiet", action="store_true", help="suppress progress output")

    worker = actions.add_parser(
        "worker", help="join a running coordinator as a TCP worker"
    )
    worker.add_argument(
        "--connect", default=DEFAULT_ENDPOINT,
        help=f"coordinator endpoint (default {DEFAULT_ENDPOINT})",
    )
    worker.add_argument("--worker-id", default=None, help="override the worker identity")
    worker.add_argument(
        "--heartbeat", type=float, default=5.0,
        help="seconds between lease-extending heartbeats (0 disables)",
    )
    worker.add_argument(
        "--kill-after", type=int, default=0, metavar="N",
        help="chaos: die abruptly after the Nth granted lease (testing)",
    )

    status = actions.add_parser(
        "status", help="query a running coordinator's queue counters"
    )
    status.add_argument(
        "--connect", default=DEFAULT_ENDPOINT,
        help=f"coordinator endpoint (default {DEFAULT_ENDPOINT})",
    )
    status.add_argument(
        "--timeout", type=float, default=5.0, help="reply timeout in seconds"
    )


def _cmd_coordinator(args: argparse.Namespace) -> int:
    from ..campaign.registry import resolve_scenarios
    from ..campaign.runner import CampaignInterrupted, CampaignRunner
    from ..campaign.spec import CampaignSpec
    from ..campaign.store import ResultStore
    from .coordinator import DistConfig

    names = [n.strip() for n in args.scenarios.split(",") if n.strip()]
    try:
        scenarios = resolve_scenarios(names)
        parse_endpoint(args.bind)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    spec = CampaignSpec(
        name=args.name or "-".join(names) + f"_x{args.seeds}",
        scenarios=tuple(scenarios),
        seeds=args.seeds,
        root_seed=args.root_seed,
        workers=max(1, args.workers),
    )
    store = ResultStore(args.results_dir)

    def progress(done: int, total: int, record) -> None:
        if not args.quiet:
            _LOG.info(
                "[%d/%d] %s replicate=%s", done, total,
                record["scenario"], record["replicate"],
            )

    config = DistConfig(
        transport="tcp",
        bind=args.bind,
        lease_ttl=args.lease_ttl,
        max_attempts=args.max_attempts,
        journal=args.journal,
    )
    print(f"coordinator serving campaign {spec.name!r} on {args.bind}", flush=True)
    runner = CampaignRunner(spec, store=store, progress=progress)
    try:
        result = runner.run(
            workers=args.workers, append=args.append,
            backend="dist", resume=args.resume, dist=config,
        )
    except CampaignInterrupted as exc:
        partial = exc.result
        print(
            f"interrupted: {len(partial.records)} completed run(s) flushed to "
            f"{partial.store_path}; re-run with --resume to finish",
            file=sys.stderr,
        )
        return 130
    skipped = f" ({result.skipped} resumed)" if result.skipped else ""
    print(
        f"campaign {spec.name!r}: {len(result.records)} runs{skipped} in "
        f"{result.elapsed_seconds:.2f}s -> {result.store_path}"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .worker import run_standalone_worker

    options = {
        "heartbeat_interval": args.heartbeat,
        "kill_after_leases": args.kill_after,
    }
    if args.worker_id:
        options["worker_id"] = args.worker_id
    try:
        return run_standalone_worker(args.connect, options)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130


def _cmd_status(args: argparse.Namespace) -> int:
    try:
        host, port = parse_endpoint(args.connect)
        channel = connect_tcp(host, port, timeout=args.timeout)
    except (ValueError, OSError) as exc:
        print(f"error: cannot reach coordinator at {args.connect}: {exc}",
              file=sys.stderr)
        return 2
    try:
        channel.send({"op": "status", "worker": "status-cli"})
        reply = channel.recv(args.timeout)
    except ChannelClosed as exc:
        print(f"error: coordinator dropped the connection: {exc}", file=sys.stderr)
        return 2
    finally:
        channel.close()
    if reply is None:
        print("error: no status reply before the timeout", file=sys.stderr)
        return 2
    for key in sorted(k for k in reply if k != "op"):
        print(f"{key}: {reply[key]}")
    return 0


def run_dist_command(args: argparse.Namespace) -> int:
    handlers = {
        "coordinator": _cmd_coordinator,
        "worker": _cmd_worker,
        "status": _cmd_status,
    }
    return handlers[args.action](args)
