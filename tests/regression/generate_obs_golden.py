"""Regenerate the golden trace digests under ``tests/data/golden_obs/``.

Two fixtures are pinned, both from the fig9 scenario at its canonical
campaign seed:

* ``fig9_trace.json`` -- the **byte-exact** JSONL trace export: event
  count, per-(category, name) counts, the first few JSONL lines verbatim,
  and the SHA-256 of the full export.
* ``fig9_analytics.json`` -- the **byte-exact** analytics derived from that
  trace: SHA-256 of the canonical timeline JSON and of the canonical audit
  list JSON, plus a few headline values for human-readable drift reports.

``tests/regression/test_obs_golden.py`` re-runs the scenario under the
tracer and compares -- the trace stream and everything derived from it are
required to be deterministic, so any drift is a real behaviour change in
the engine, the scheduler, the instrumentation or the analytics, and must
come with a regenerated fixture and an explanation in the commit that
carries it.

Run ONLY after verifying a change is intentional::

    PYTHONPATH=src python tests/regression/generate_obs_golden.py
"""
from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.campaign import builtin  # noqa: F401  (registers the scenarios)
from repro.campaign.registry import builtin_scenarios, consume_provenance, get_runner
from repro.obs import EventTracer, observe
from repro.sim.randomness import derive_seed

#: The traced scenario and the number of verbatim head lines pinned.
TRACED_SCENARIO = "fig9"
HEAD_LINES = 5

GOLDEN_OBS_DIR = Path(__file__).resolve().parent.parent / "data" / "golden_obs"


def _traced_scenario(name: str) -> tuple:
    """Run one scenario under the tracer at its canonical campaign seed."""
    spec = builtin_scenarios()[name]
    seed = derive_seed(0, name, 0)
    tracer = EventTracer()
    consume_provenance()
    with observe(tracer=tracer):
        get_runner(spec.runner)(spec, seed)
    consume_provenance()
    return tracer, seed


def _trace_digest(tracer: EventTracer, name: str, seed: int) -> dict:
    text = tracer.to_jsonl()
    return {
        "scenario": name,
        "seed": seed,
        "event_count": len(tracer),
        "count_by": {
            f"{cat}/{event}": count
            for (cat, event), count in sorted(tracer.count_by().items())
        },
        "head": text.splitlines()[:HEAD_LINES],
        "sha256": hashlib.sha256(text.encode("utf-8")).hexdigest(),
    }


def _analytics_digest(tracer: EventTracer, name: str, seed: int) -> dict:
    from repro.obs.lifecycle import audits_to_json, build_audits, summarize_audits
    from repro.obs.timeline import TimelineBuilder

    timeline = TimelineBuilder().build(tracer.events)
    audits = build_audits(tracer.events)
    summary = summarize_audits(audits)
    return {
        "scenario": name,
        "seed": seed,
        "timeline_series": sorted(timeline.series),
        "timeline_sha256": hashlib.sha256(
            timeline.to_json().encode("utf-8")
        ).hexdigest(),
        "jobs": int(summary["jobs"]),
        "wait_p95": summary["wait_p95"],
        "node_seconds": summary["node_seconds"],
        "audits_sha256": hashlib.sha256(
            audits_to_json(audits).encode("utf-8")
        ).hexdigest(),
    }


def golden_digests(name: str = TRACED_SCENARIO) -> tuple:
    """(trace digest, analytics digest) from one shared scenario run."""
    tracer, seed = _traced_scenario(name)
    return _trace_digest(tracer, name, seed), _analytics_digest(tracer, name, seed)


def golden_trace_digest(name: str = TRACED_SCENARIO) -> dict:
    """Run one scenario under the tracer and digest its JSONL export."""
    tracer, seed = _traced_scenario(name)
    return _trace_digest(tracer, name, seed)


def main() -> None:
    GOLDEN_OBS_DIR.mkdir(parents=True, exist_ok=True)
    trace, analytics = golden_digests()
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_trace.json"
    path.write_text(
        json.dumps(trace, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(f"wrote {path} ({trace['event_count']} events, sha {trace['sha256'][:12]})")
    path = GOLDEN_OBS_DIR / f"{TRACED_SCENARIO}_analytics.json"
    path.write_text(
        json.dumps(analytics, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {path} (timeline sha {analytics['timeline_sha256'][:12]}, "
        f"audits sha {analytics['audits_sha256'][:12]})"
    )


if __name__ == "__main__":
    main()
