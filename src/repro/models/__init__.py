"""Application models: AMR working-set evolution, speed-up, static analysis."""
from .amr_evolution import (
    AmrEvolutionParameters,
    WorkingSetEvolution,
    normalized_profile,
    working_set_profile,
)
from .speedup import GIB_IN_MIB, PAPER_SPEEDUP_MODEL, SpeedupModel, TIB_IN_MIB
from .static_equivalent import (
    DEFAULT_NODE_MEMORY_MIB,
    DynamicAllocationResult,
    StaticEquivalentResult,
    dynamic_allocation,
    end_time_increase,
    equivalent_static_allocation,
    static_allocation_range,
)

__all__ = [
    "AmrEvolutionParameters",
    "WorkingSetEvolution",
    "normalized_profile",
    "working_set_profile",
    "SpeedupModel",
    "PAPER_SPEEDUP_MODEL",
    "GIB_IN_MIB",
    "TIB_IN_MIB",
    "DynamicAllocationResult",
    "StaticEquivalentResult",
    "dynamic_allocation",
    "equivalent_static_allocation",
    "end_time_increase",
    "static_allocation_range",
    "DEFAULT_NODE_MEMORY_MIB",
]
