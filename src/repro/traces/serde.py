"""Strict dictionary deserialisation shared by the trace subsystem.

Every declarative object in this package (component models, transformations,
mixes, trace sources) round-trips through plain dictionaries; they all
reject unknown keys the same way so a typo in a scenario spec fails loudly
at load time instead of being silently dropped.
"""
from __future__ import annotations

from dataclasses import fields
from typing import Mapping, Tuple

from ..core.errors import WorkloadError

__all__ = ["from_strict_dict"]


def from_strict_dict(cls, data: Mapping, *, ignore: Tuple[str, ...] = ("kind",)):
    """Build dataclass *cls* from *data*, rejecting unknown fields.

    Keys in *ignore* (the ``kind`` discriminator by default) are dropped
    before matching against the dataclass fields.
    """
    kwargs = {k: v for k, v in dict(data).items() if k not in ignore}
    known = {f.name for f in fields(cls)}
    unknown = set(kwargs) - known
    if unknown:
        raise WorkloadError(
            f"{cls.__name__} does not understand field(s): {sorted(unknown)}"
        )
    return cls(**kwargs)
