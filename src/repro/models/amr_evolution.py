"""Working-set evolution model of an AMR application (paper Section 2.1).

The paper derives a synthetic "acceleration--deceleration" model of how the
refined-mesh size of an Adaptive Mesh Refinement computation evolves:

* the application runs a fixed number of steps (1000 in the paper);
* the data size :math:`s_i` evolves with a velocity :math:`v_i`
  (:math:`s_i = s_{i-1} + v_i`);
* the run is divided into phases of random length (uniform in [1, 200]
  steps); during *even* phases the velocity accelerates
  (:math:`v_i = v_{i-1} + 0.01`), during *odd* phases it decays
  (:math:`v_i = 0.95 \\cdot v_{i-1}`);
* Gaussian noise (:math:`\\mu = 0, \\sigma = 2`) is added to the sizes;
* the profile is normalised so that its maximum equals 1000.

The resulting profiles are mostly increasing, show regions of sudden increase
and regions of constancy, and carry some noise -- the three features the
paper extracts from published AMR studies.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..sim.randomness import RandomSource

__all__ = [
    "AmrEvolutionParameters",
    "normalized_profile",
    "working_set_profile",
    "WorkingSetEvolution",
]

#: Normalised profiles peak at this value, as in the paper's Figure 1.
NORMALIZED_PEAK = 1000.0


@dataclass(frozen=True)
class AmrEvolutionParameters:
    """Parameters of the acceleration--deceleration model."""

    num_steps: int = 1000
    phase_min_steps: int = 1
    phase_max_steps: int = 200
    acceleration: float = 0.01
    deceleration_factor: float = 0.95
    noise_sigma: float = 2.0

    def __post_init__(self) -> None:
        if self.num_steps <= 0:
            raise ValueError("num_steps must be positive")
        if not 1 <= self.phase_min_steps <= self.phase_max_steps:
            raise ValueError("phase bounds must satisfy 1 <= min <= max")
        if self.acceleration <= 0:
            raise ValueError("acceleration must be positive")
        if not 0 < self.deceleration_factor < 1:
            raise ValueError("deceleration_factor must be in (0, 1)")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")

    @classmethod
    def scaled(cls, num_steps: int) -> "AmrEvolutionParameters":
        """Parameters rescaled to a shorter run while keeping the shape.

        The paper's constants are tuned for 1000 steps; with far fewer steps
        the raw sizes stay so small that the Gaussian noise dominates after
        normalisation and the profile loses its "mostly increasing" shape.
        Scaling the acceleration by ``(1000 / num_steps)**2`` keeps the raw
        magnitude comparable, and shrinking the phase lengths proportionally
        keeps several acceleration/deceleration phases per run.  Used by the
        reduced/tiny experiment scales and the test suite.
        """
        if num_steps <= 0:
            raise ValueError("num_steps must be positive")
        factor = 1000.0 / num_steps
        return cls(
            num_steps=num_steps,
            phase_min_steps=1,
            phase_max_steps=max(1, int(round(200 / factor))),
            acceleration=0.01 * factor * factor,
            deceleration_factor=0.95,
            noise_sigma=2.0,
        )


def normalized_profile(
    seed: Optional[int] = None,
    params: AmrEvolutionParameters = AmrEvolutionParameters(),
    random_source: Optional[RandomSource] = None,
) -> np.ndarray:
    """Generate one normalised working-set profile.

    Returns an array of ``params.num_steps`` values in ``[0, 1000]`` whose
    maximum is exactly 1000 (the paper's normalisation).
    """
    rng = random_source if random_source is not None else RandomSource(seed)

    sizes = np.empty(params.num_steps, dtype=float)
    size = 0.0
    velocity = 0.0
    step = 0
    phase_index = 0
    while step < params.num_steps:
        phase_len = rng.uniform_int(params.phase_min_steps, params.phase_max_steps)
        accelerating = phase_index % 2 == 0
        for _ in range(phase_len):
            if step >= params.num_steps:
                break
            if accelerating:
                velocity = velocity + params.acceleration
            else:
                velocity = velocity * params.deceleration_factor
            size = size + velocity
            sizes[step] = size
            step += 1
        phase_index += 1

    if params.noise_sigma > 0:
        sizes = sizes + rng.gaussian_array(0.0, params.noise_sigma, params.num_steps)

    # The working set cannot be negative.
    sizes = np.maximum(sizes, 0.0)

    peak = sizes.max()
    if peak <= 0:
        # Degenerate (can only happen for tiny profiles drowned in noise):
        # return a flat profile at the peak value.
        return np.full(params.num_steps, NORMALIZED_PEAK)
    return sizes * (NORMALIZED_PEAK / peak)


def working_set_profile(
    max_size_mib: float,
    seed: Optional[int] = None,
    params: AmrEvolutionParameters = AmrEvolutionParameters(),
    random_source: Optional[RandomSource] = None,
) -> np.ndarray:
    """Generate an actual (non-normalised) data-size profile in MiB.

    The normalised profile is scaled so that its peak equals *max_size_mib*
    (the paper's :math:`S_i = s_i \\cdot S_{max}` with :math:`s_i` normalised
    to 1).
    """
    if max_size_mib <= 0:
        raise ValueError("max_size_mib must be positive")
    profile = normalized_profile(seed=seed, params=params, random_source=random_source)
    return profile * (max_size_mib / NORMALIZED_PEAK)


class WorkingSetEvolution:
    """A concrete working-set evolution, step by step.

    This is the object the simulated AMR application consults: it exposes the
    data size of the *current* step only, because a non-predictably evolving
    application cannot look ahead (Section 2.3).  Analysis code (which is
    allowed a posteriori knowledge) can read :attr:`sizes_mib` directly.
    """

    def __init__(self, sizes_mib: Sequence[float]):
        sizes = np.asarray(sizes_mib, dtype=float)
        if sizes.ndim != 1 or len(sizes) == 0:
            raise ValueError("sizes_mib must be a non-empty 1-D sequence")
        if (sizes < 0).any():
            raise ValueError("data sizes cannot be negative")
        self.sizes_mib = sizes

    @classmethod
    def generate(
        cls,
        max_size_mib: float,
        seed: Optional[int] = None,
        params: AmrEvolutionParameters = AmrEvolutionParameters(),
        random_source: Optional[RandomSource] = None,
    ) -> "WorkingSetEvolution":
        """Draw a random evolution with the given peak size."""
        return cls(
            working_set_profile(
                max_size_mib, seed=seed, params=params, random_source=random_source
            )
        )

    @property
    def num_steps(self) -> int:
        return len(self.sizes_mib)

    @property
    def peak_size_mib(self) -> float:
        return float(self.sizes_mib.max())

    def size_at(self, step: int) -> float:
        """Data size (MiB) during step *step* (0-based)."""
        if not 0 <= step < self.num_steps:
            raise IndexError(f"step {step} out of range [0, {self.num_steps})")
        return float(self.sizes_mib[step])

    def __len__(self) -> int:
        return self.num_steps

    def __iter__(self):
        return iter(float(s) for s in self.sizes_mib)
