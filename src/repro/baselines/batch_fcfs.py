"""A classical rigid-only batch scheduler baseline.

This is the "current HPC RMS" the paper argues against: jobs are rigid, the
allocation cannot change after it starts, and evolving applications must
request their peak requirements for their whole runtime.

The baseline is a *policy composition*, not a parallel code path: the queue
discipline comes from the policy's ordering stage and the queue itself from
its backfilling stage (:class:`~repro.core.cbf.ConservativeBackfillQueue` or
:class:`~repro.policies.backfill.EasyBackfillQueue`) -- the same primitives
CooRMv2's pre-allocation scheduling uses, which keeps head-to-head
comparisons meaningful.  The default policy reproduces the classical
first-come-first-served + Conservative Back-Filling RMS.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..core.cbf import CbfJob
from ..policies.registry import resolve_policy
from ..workloads.generator import RigidJobSpec

__all__ = ["BatchJobOutcome", "BatchSchedulerBaseline", "peak_static_job"]


@dataclass(frozen=True)
class BatchJobOutcome:
    """Result of scheduling one rigid job."""

    job_id: str
    submit_time: float
    start_time: float
    end_time: float
    node_count: int

    @property
    def wait_time(self) -> float:
        return self.start_time - self.submit_time

    @property
    def area(self) -> float:
        return self.node_count * (self.end_time - self.start_time)


class BatchSchedulerBaseline:
    """Rigid batch scheduling over a single homogeneous cluster.

    *policy* is a scheduling-policy reference (registered name, stage
    mapping or policy object); its ordering stage decides the queue order of
    the jobs and its backfilling stage supplies the reservation discipline.
    The default (``"coorm"``) composes FCFS ordering with Conservative
    Back-Filling -- the classical batch RMS of the paper's comparison.
    """

    def __init__(self, node_count: int, policy=None):
        self.policy = resolve_policy(policy)
        self.queue = self.policy.backfill.make_queue(node_count)
        self.outcomes: List[BatchJobOutcome] = []

    def run(self, jobs: Sequence[RigidJobSpec]) -> List[BatchJobOutcome]:
        """Schedule *jobs* (queue order per the policy) and return outcomes."""
        ordered = self.policy.ordering.order_jobs(list(jobs))
        cbf_jobs = [
            CbfJob(
                job_id=spec.job_id,
                node_count=spec.node_count,
                duration=spec.duration,
                submit_time=spec.submit_time,
            )
            for spec in ordered
        ]
        starts = self.queue.submit_many(cbf_jobs)
        for spec, start in zip(ordered, starts):
            self.outcomes.append(
                BatchJobOutcome(
                    job_id=spec.job_id,
                    submit_time=spec.submit_time,
                    start_time=start,
                    end_time=start + spec.duration,
                    node_count=spec.node_count,
                )
            )
        return self.outcomes

    # ------------------------------------------------------------------ #
    # Aggregate metrics
    # ------------------------------------------------------------------ #
    def makespan(self) -> float:
        return max((o.end_time for o in self.outcomes), default=0.0)

    def mean_wait_time(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.wait_time for o in self.outcomes) / len(self.outcomes)

    def utilisation(self) -> float:
        """Consumed node-seconds over offered node-seconds until the makespan."""
        horizon = self.makespan()
        if horizon <= 0:
            return 0.0
        used = sum(o.area for o in self.outcomes)
        return used / (self.queue.node_count * horizon)

    def outcome_by_id(self) -> Dict[str, BatchJobOutcome]:
        return {o.job_id: o for o in self.outcomes}


def peak_static_job(
    job_id: str,
    peak_nodes: int,
    total_runtime: float,
    submit_time: float = 0.0,
) -> RigidJobSpec:
    """The rigid job an evolving application is forced to submit today.

    Without RMS support for evolution, the user requests the peak node count
    for the whole runtime (Section 1: applications are "forced to make an
    allocation based on their maximum expected requirements").
    """
    return RigidJobSpec(
        job_id=job_id,
        submit_time=submit_time,
        node_count=peak_nodes,
        duration=total_runtime,
    )
