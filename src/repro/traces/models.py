"""Statistical workload models: synthesize SWF traces from fitted parameters.

A :class:`TraceModel` combines three independent component models -- an
arrival process, a duration distribution and a node-count distribution --
and synthesizes arbitrarily many :class:`~repro.traces.swf.SwfJob` records
from them.  Component models mirror the classic Parallel Workloads Archive
observations:

* arrivals are Poisson (:class:`PoissonArrivals`) or follow a daily cycle
  (:class:`DailyCycleArrivals`, a non-homogeneous Poisson process thinned
  against a sinusoidal rate);
* durations are log-uniform (:class:`LogUniformDuration`) or log-normal
  (:class:`LogNormalDuration`);
* node counts are log-uniform, optionally rounded down to powers of two
  (:class:`LogUniformNodes`).

Every model round-trips through a ``{"kind": ...}`` dictionary so trace
sources in campaign scenario specs stay plain JSON, and every model can be
*fitted* from an existing trace, which turns a short real trace into an
arbitrarily long statistically-similar synthetic one.
"""
from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Mapping, Optional, Type

from ..core.errors import WorkloadError
from ..sim.randomness import RandomSource
from .serde import from_strict_dict
from .swf import SwfHeader, SwfJob, Trace

__all__ = [
    "PoissonArrivals",
    "DailyCycleArrivals",
    "LogUniformDuration",
    "LogNormalDuration",
    "LogUniformNodes",
    "TraceModel",
    "model_from_dict",
]

SECONDS_PER_DAY = 86_400.0


def _to_dict(model) -> Dict:
    data = asdict(model)
    data["kind"] = model.kind
    return data


# --------------------------------------------------------------------- #
# Arrival processes
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PoissonArrivals:
    """Homogeneous Poisson arrivals with a constant rate (jobs/second)."""

    kind = "poisson"
    rate: float = 1.0 / 300.0

    def __post_init__(self) -> None:
        # The comparison-based check alone would let nan/inf through (nan
        # compares False everywhere) and hang or poison the synthesis.
        if not 0 < self.rate < math.inf:
            raise ValueError("arrival rate must be positive and finite")

    def arrival_times(self, count: int, rng: RandomSource) -> List[float]:
        clock = 0.0
        times: List[float] = []
        for _ in range(count):
            clock += rng.exponential(1.0 / self.rate)
            times.append(clock)
        return times

    @classmethod
    def fit(cls, submit_times: List[float]) -> "PoissonArrivals":
        if len(submit_times) < 2:
            return cls()
        span = max(submit_times) - min(submit_times)
        if span <= 0:
            return cls()
        return cls(rate=(len(submit_times) - 1) / span)


@dataclass(frozen=True)
class DailyCycleArrivals:
    """Non-homogeneous Poisson arrivals with a sinusoidal daily cycle.

    The instantaneous rate is ``mean_rate * (1 + a*cos(2*pi*(t - peak)/day))``
    with the amplitude *a* chosen so that the peak-to-trough rate ratio equals
    ``peak_to_trough``; samples are drawn by thinning a homogeneous process
    running at the peak rate, the textbook construction.
    """

    kind = "daily_cycle"
    mean_rate: float = 1.0 / 300.0
    peak_to_trough: float = 4.0
    peak_hour: float = 14.0

    def __post_init__(self) -> None:
        if not 0 < self.mean_rate < math.inf:
            raise ValueError("mean arrival rate must be positive and finite")
        # An infinite ratio makes the amplitude nan, and the thinning loop in
        # arrival_times would then never accept a sample -- reject it here.
        if not 1.0 <= self.peak_to_trough < math.inf:
            raise ValueError("peak_to_trough must be >= 1 and finite")
        if not 0.0 <= self.peak_hour < 24.0:
            raise ValueError("peak_hour must be in [0, 24)")

    @property
    def amplitude(self) -> float:
        return (self.peak_to_trough - 1.0) / (self.peak_to_trough + 1.0)

    def rate_at(self, t: float) -> float:
        phase = 2.0 * math.pi * (t - self.peak_hour * 3600.0) / SECONDS_PER_DAY
        return self.mean_rate * (1.0 + self.amplitude * math.cos(phase))

    def arrival_times(self, count: int, rng: RandomSource) -> List[float]:
        peak_rate = self.mean_rate * (1.0 + self.amplitude)
        clock = 0.0
        times: List[float] = []
        while len(times) < count:
            clock += rng.exponential(1.0 / peak_rate)
            if rng.uniform() * peak_rate <= self.rate_at(clock):
                times.append(clock)
        return times

    @classmethod
    def fit(cls, submit_times: List[float]) -> "DailyCycleArrivals":
        """Fit the mean rate; keep the default cycle shape.

        Fitting the full cycle needs multi-day traces; the mean rate alone
        already reproduces the load, and the shape knobs stay adjustable.
        """
        base = PoissonArrivals.fit(submit_times)
        return cls(mean_rate=base.rate)


# --------------------------------------------------------------------- #
# Duration and node-count distributions
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class LogUniformDuration:
    """Runtimes drawn log-uniformly from ``[min_seconds, max_seconds]``."""

    kind = "log_uniform_duration"
    min_seconds: float = 60.0
    max_seconds: float = 86_400.0

    def __post_init__(self) -> None:
        if not 0 < self.min_seconds <= self.max_seconds < math.inf:
            raise ValueError("duration bounds must satisfy 0 < min <= max, finite")

    def sample(self, rng: RandomSource) -> float:
        return math.exp(
            rng.uniform(math.log(self.min_seconds), math.log(self.max_seconds))
        )

    @classmethod
    def fit(cls, durations: List[float]) -> "LogUniformDuration":
        positive = [d for d in durations if d > 0]
        if not positive:
            return cls()
        return cls(min_seconds=min(positive), max_seconds=max(positive))


@dataclass(frozen=True)
class LogNormalDuration:
    """Log-normal runtimes, clipped to ``[min_seconds, max_seconds]``."""

    kind = "log_normal_duration"
    log_mean: float = math.log(1800.0)
    log_sigma: float = 1.0
    min_seconds: float = 1.0
    max_seconds: float = 86_400.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.log_mean) or not 0 <= self.log_sigma < math.inf:
            raise ValueError("log_mean must be finite and log_sigma >= 0 and finite")
        if not 0 < self.min_seconds <= self.max_seconds < math.inf:
            raise ValueError("duration bounds must satisfy 0 < min <= max, finite")

    def sample(self, rng: RandomSource) -> float:
        value = rng.lognormal(self.log_mean, self.log_sigma)
        return min(self.max_seconds, max(self.min_seconds, value))

    @classmethod
    def fit(cls, durations: List[float]) -> "LogNormalDuration":
        logs = [math.log(d) for d in durations if d > 0]
        if not logs:
            return cls()
        mean = sum(logs) / len(logs)
        variance = sum((x - mean) ** 2 for x in logs) / len(logs)
        positive = [d for d in durations if d > 0]
        return cls(
            log_mean=mean,
            log_sigma=math.sqrt(variance),
            min_seconds=min(positive),
            max_seconds=max(positive),
        )


@dataclass(frozen=True)
class LogUniformNodes:
    """Node counts drawn log-uniformly, optionally snapped to powers of two."""

    kind = "log_uniform_nodes"
    min_nodes: int = 1
    max_nodes: int = 128
    power_of_two: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("node bounds must satisfy 1 <= min <= max")

    def sample(self, rng: RandomSource) -> int:
        nodes = int(
            round(
                math.exp(rng.uniform(math.log(self.min_nodes), math.log(self.max_nodes)))
            )
        )
        nodes = max(self.min_nodes, min(self.max_nodes, nodes))
        if self.power_of_two:
            nodes = 1 << (nodes.bit_length() - 1)
            while nodes < self.min_nodes:  # e.g. min_nodes=3 -> snap up to 4
                nodes <<= 1
            # Only an unsatisfiable range (no power of two in [min, max])
            # falls back to a non-power-of-two count.
            nodes = min(self.max_nodes, nodes)
        return nodes

    @classmethod
    def fit(cls, node_counts: List[int]) -> "LogUniformNodes":
        positive = [n for n in node_counts if n > 0]
        if not positive:
            return cls()
        power_of_two = all(n & (n - 1) == 0 for n in positive)
        return cls(
            min_nodes=min(positive), max_nodes=max(positive), power_of_two=power_of_two
        )


#: TraceModel slot name -> component classes that may fill it.
_SLOT_TYPES: Dict[str, tuple] = {
    "arrivals": (PoissonArrivals, DailyCycleArrivals),
    "durations": (LogUniformDuration, LogNormalDuration),
    "nodes": (LogUniformNodes,),
}

#: kind tag -> component model class, for deserialisation.
_MODEL_KINDS: Dict[str, Type] = {
    cls.kind: cls
    for cls in (
        PoissonArrivals,
        DailyCycleArrivals,
        LogUniformDuration,
        LogNormalDuration,
        LogUniformNodes,
    )
}


def model_from_dict(data: Mapping):
    """Rebuild any component model from its ``{"kind": ...}`` dictionary."""
    kind = data.get("kind")
    try:
        cls = _MODEL_KINDS[kind]
    except KeyError:
        raise WorkloadError(
            f"unknown trace model kind {kind!r}; known kinds: {sorted(_MODEL_KINDS)}"
        ) from None
    return from_strict_dict(cls, data)


# --------------------------------------------------------------------- #
# The combined trace model
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TraceModel:
    """Arrivals x durations x node counts, synthesizing full SWF traces."""

    arrivals: PoissonArrivals = PoissonArrivals()
    durations: LogNormalDuration = LogNormalDuration()
    nodes: LogUniformNodes = LogUniformNodes()

    def synthesize(self, job_count: int, seed: Optional[int] = None) -> Trace:
        """Draw *job_count* jobs; fully determined by the model and *seed*."""
        if job_count <= 0:
            raise ValueError("job_count must be positive")
        rng = RandomSource(seed)
        submit_times = self.arrivals.arrival_times(job_count, rng)
        jobs = []
        for index, submit in enumerate(submit_times):
            duration = self.durations.sample(rng)
            nodes = self.nodes.sample(rng)
            jobs.append(
                SwfJob(
                    job_number=index + 1,
                    submit_time=round(submit, 3),
                    run_time=round(duration, 3),
                    used_procs=nodes,
                    req_procs=nodes,
                    req_time=round(duration, 3),
                    status=1,
                )
            )
        header = SwfHeader(
            directives={
                "UnixStartTime": "0",
                "MaxNodes": str(self.nodes.max_nodes),
                "MaxProcs": str(self.nodes.max_nodes),
            },
            comments=("Synthesized by repro.traces.models.TraceModel",),
        )
        step = {
            "kind": "synthesize",
            "model": self.to_dict(),
            "job_count": job_count,
            "seed": seed,
        }
        return Trace(header=header, jobs=tuple(jobs), provenance=(step,))

    @classmethod
    def fit(cls, trace: Trace, daily_cycle: bool = False) -> "TraceModel":
        """Fit all three component models from an existing trace."""
        jobs = [job for job in trace.jobs if job.is_valid_job()]
        if not jobs:
            raise WorkloadError("cannot fit a model to a trace with no valid jobs")
        submit_times = sorted(job.submit_time for job in jobs)
        arrivals = (
            DailyCycleArrivals.fit(submit_times)
            if daily_cycle
            else PoissonArrivals.fit(submit_times)
        )
        return cls(
            arrivals=arrivals,
            durations=LogNormalDuration.fit([job.duration for job in jobs]),
            nodes=LogUniformNodes.fit([job.node_count for job in jobs]),
        )

    def to_dict(self) -> Dict:
        return {
            "arrivals": _to_dict(self.arrivals),
            "durations": _to_dict(self.durations),
            "nodes": _to_dict(self.nodes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceModel":
        unknown = set(data) - set(_SLOT_TYPES)
        if unknown:
            raise WorkloadError(
                f"TraceModel does not understand field(s): {sorted(unknown)}"
            )
        kwargs = {}
        for name, allowed in _SLOT_TYPES.items():
            if name in data:
                component = model_from_dict(data[name])
                if not isinstance(component, allowed):
                    raise WorkloadError(
                        f"{name!r} model cannot be of kind {component.kind!r}; "
                        f"expected one of {sorted(c.kind for c in allowed)}"
                    )
                kwargs[name] = component
        return cls(**kwargs)
