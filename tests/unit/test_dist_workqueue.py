"""Work queue: leases, backoff retries, reclaim, dedup, journal.

All timestamps are hand-rolled -- the queue never reads a clock -- so every
expiry and backoff boundary is tested exactly, without sleeping.
"""
from __future__ import annotations

import json

import pytest

from repro.dist.workqueue import (
    DONE,
    FAILED,
    LEASED,
    PENDING,
    WorkQueue,
    completed_keys_from_journal,
)


def filled(n=3, **kwargs) -> WorkQueue:
    queue = WorkQueue(**kwargs)
    for i in range(n):
        queue.add(f"k{i}", i, {"index": i})
    return queue


class TestLeasing:
    def test_leases_in_canonical_order(self):
        queue = filled(3)
        assert queue.lease("w0", now=0.0).key == "k0"
        assert queue.lease("w1", now=0.0).key == "k1"
        assert queue.lease("w0", now=0.0).key == "k2"
        assert queue.lease("w1", now=0.0) is None

    def test_lease_carries_the_task_payload(self):
        queue = filled(1)
        unit = queue.lease("w0", now=0.0)
        assert unit.task == {"index": 0}
        assert unit.attempts == 1
        assert unit.state == LEASED

    def test_duplicate_keys_are_rejected(self):
        queue = filled(1)
        with pytest.raises(ValueError, match="duplicate"):
            queue.add("k0", 9, {})

    def test_complete_marks_done_and_counts(self):
        queue = filled(1)
        queue.lease("w0", now=0.0)
        assert queue.complete("k0", "w0", now=1.0) is True
        assert queue.unit("k0").state == DONE
        assert queue.all_done()
        assert queue.stats.counters["completed"] == 1

    def test_duplicate_completion_is_a_counted_noop(self):
        queue = filled(1)
        queue.lease("w0", now=0.0)
        assert queue.complete("k0", "w0", now=1.0) is True
        assert queue.complete("k0", "w1", now=2.0) is False
        assert queue.stats.counters["dedup_hits"] == 1
        assert queue.stats.counters["completed"] == 1

    def test_late_result_from_a_reclaimed_worker_is_accepted_first_wins(self):
        # w0's lease expires and the unit is re-leased to w1; w0 then
        # reports first.  The work is valid regardless of which attempt
        # carried it, so the first result wins and w1's is deduplicated.
        queue = filled(1, lease_ttl=1.0)
        queue.lease("w0", now=0.0)
        queue.reclaim(now=2.0)
        queue.lease("w1", now=3.0)
        assert queue.complete("k0", "w0", now=3.5) is True
        assert queue.complete("k0", "w1", now=4.0) is False


class TestRetryAndBackoff:
    def test_failed_unit_backs_off_exponentially(self):
        queue = filled(1, backoff_base=1.0, backoff_cap=100.0, max_attempts=5)
        for attempt, expected_backoff in ((1, 1.0), (2, 2.0), (3, 4.0)):
            unit = queue.lease("w0", now=100.0 * attempt)
            assert unit is not None and unit.attempts == attempt
            queue.fail("k0", "w0", now=100.0 * attempt, error="boom")
            assert unit.state == PENDING
            assert unit.not_before == 100.0 * attempt + expected_backoff

    def test_backoff_respects_the_cap(self):
        queue = filled(1, backoff_base=1.0, backoff_cap=3.0, max_attempts=10)
        for attempt in range(1, 5):
            queue.lease("w0", now=1000.0 * attempt)
            queue.fail("k0", "w0", now=1000.0 * attempt)
        assert queue.unit("k0").not_before <= 4000.0 + 3.0

    def test_unit_not_leasable_before_backoff_expires(self):
        queue = filled(1, backoff_base=5.0)
        queue.lease("w0", now=0.0)
        queue.fail("k0", "w0", now=10.0)
        assert queue.lease("w0", now=12.0) is None  # still backing off
        assert queue.lease("w0", now=15.0).key == "k0"

    def test_max_attempts_fails_terminally(self):
        queue = filled(1, max_attempts=2, backoff_base=0.0)
        for _ in range(2):
            queue.lease("w0", now=0.0)
            queue.fail("k0", "w0", now=0.0, error="boom")
        unit = queue.unit("k0")
        assert unit.state == FAILED
        assert unit.error == "boom"
        assert queue.all_done()
        assert queue.failed_units() == [unit]
        assert queue.lease("w0", now=99.0) is None


class TestReclaim:
    def test_expired_lease_is_reclaimed(self):
        queue = filled(1, lease_ttl=10.0)
        queue.lease("w0", now=0.0)
        assert queue.reclaim(now=5.0) == []
        assert queue.reclaim(now=11.0) == ["k0"]
        assert queue.unit("k0").state == PENDING
        assert queue.stats.counters["reclaims"] == 1

    def test_heartbeat_extends_every_lease_of_the_worker(self):
        queue = filled(2, lease_ttl=10.0)
        queue.lease("w0", now=0.0)
        queue.lease("w0", now=0.0)
        assert queue.heartbeat("w0", now=8.0) == 2
        assert queue.reclaim(now=15.0) == []  # extended to 18.0
        assert queue.reclaim(now=19.0) == ["k0", "k1"]

    def test_disconnect_releases_immediately(self):
        queue = filled(2, lease_ttl=1000.0)
        queue.lease("w0", now=0.0)
        queue.lease("w1", now=0.0)
        assert queue.release_worker("w0", now=1.0) == ["k0"]
        assert queue.unit("k0").state == PENDING
        assert queue.unit("k1").state == LEASED


class TestSnapshotAndJournal:
    def test_snapshot_has_flat_dist_counters_and_counts(self):
        queue = filled(2)
        queue.lease("w0", now=0.0)
        snapshot = queue.snapshot()
        assert snapshot["dist_leases"] == 1.0
        assert snapshot["units_pending"] == 1
        assert snapshot["units_leased"] == 1
        assert snapshot["units_total"] == 2

    def test_journal_records_transitions_and_replays_done_keys(self, tmp_path):
        journal = tmp_path / "queue.journal"
        queue = filled(2, journal=journal)
        queue.lease("w0", now=0.0)
        queue.complete("k0", "w0", now=1.0)
        ops = [json.loads(line)["op"] for line in journal.read_text().splitlines()]
        assert ops == ["add", "add", "lease", "done"]
        assert completed_keys_from_journal(journal) == {"k0"}

    def test_journal_tolerates_truncated_lines(self, tmp_path):
        journal = tmp_path / "queue.journal"
        journal.write_text('{"op": "done", "key": "a"}\n{"op": "done", "k')
        assert completed_keys_from_journal(journal) == {"a"}

    def test_missing_journal_is_empty(self, tmp_path):
        assert completed_keys_from_journal(tmp_path / "nope") == set()

    def test_invalid_configuration_is_rejected(self):
        with pytest.raises(ValueError):
            WorkQueue(lease_ttl=0.0)
        with pytest.raises(ValueError):
            WorkQueue(max_attempts=0)
