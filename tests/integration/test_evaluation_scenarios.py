"""Integration tests of the evaluation scenarios (paper Section 5).

These tests run the same scenario the figures use -- at a tiny scale -- and
assert the *qualitative* findings of the paper:

* dynamic allocation inside a pre-allocation uses fewer node-seconds than a
  static allocation, and the gap grows with the overcommit factor (Fig. 9);
* spontaneous updates cause PSA waste, announced updates reduce it and
  eliminate it once the announce interval reaches the task duration, at the
  price of a longer AMR end time (Fig. 10);
* with two PSAs, equi-partitioning with filling uses more resources than
  strict equi-partitioning (Fig. 11).
"""
from __future__ import annotations

import pytest

from repro.experiments import EvaluationScale, run_scenario
from repro.experiments.runner import build_evolution

SCALE = EvaluationScale.tiny()


@pytest.fixture(scope="module")
def evolution():
    return build_evolution(SCALE, seed=3)


class TestFigure9Behaviour:
    def test_dynamic_beats_static_and_gap_grows_with_overcommit(self, evolution):
        gaps = []
        for overcommit in (1.0, 2.0):
            static = run_scenario(
                SCALE, overcommit=overcommit, static_allocation=True, evolution=evolution
            )
            dynamic = run_scenario(
                SCALE, overcommit=overcommit, static_allocation=False, evolution=evolution
            )
            assert static.metrics.amr_used_node_seconds > dynamic.metrics.amr_used_node_seconds
            gaps.append(
                static.metrics.amr_used_node_seconds - dynamic.metrics.amr_used_node_seconds
            )
        assert gaps[1] > gaps[0]

    def test_dynamic_usage_stays_flat_as_overcommit_grows(self, evolution):
        usage = [
            run_scenario(SCALE, overcommit=oc, evolution=evolution).metrics.amr_used_node_seconds
            for oc in (1.0, 2.0)
        ]
        # Within 25 %: the application does not consume more just because the
        # user overestimated its needs.
        assert usage[1] <= usage[0] * 1.25

    def test_spontaneous_updates_cause_waste(self, evolution):
        result = run_scenario(SCALE, overcommit=1.0, evolution=evolution)
        assert result.metrics.psa_waste_node_seconds > 0
        # but the waste is smaller than what an inefficient static AMR would burn
        static = run_scenario(
            SCALE, overcommit=2.0, static_allocation=True, evolution=evolution
        )
        dynamic = run_scenario(SCALE, overcommit=2.0, evolution=evolution)
        extra_static = (
            static.metrics.amr_used_node_seconds - dynamic.metrics.amr_used_node_seconds
        )
        assert dynamic.metrics.psa_waste_node_seconds < extra_static


class TestFigure10Behaviour:
    def test_announced_updates_trade_end_time_for_waste(self, evolution):
        spontaneous = run_scenario(SCALE, announce_interval=0.0, evolution=evolution)
        announced = run_scenario(
            SCALE, announce_interval=SCALE.psa1_task_duration, evolution=evolution
        )
        # Waste disappears once the announce interval reaches the task duration.
        assert announced.metrics.psa_waste_node_seconds == pytest.approx(0.0, abs=1e-6)
        assert spontaneous.metrics.psa_waste_node_seconds > 0
        # The AMR pays with a longer end time.
        assert announced.metrics.amr_end_time > spontaneous.metrics.amr_end_time

    def test_waste_decreases_monotonically_enough(self, evolution):
        intervals = (0.0, SCALE.psa1_task_duration / 2, SCALE.psa1_task_duration)
        wastes = [
            run_scenario(SCALE, announce_interval=i, evolution=evolution).metrics.psa_waste_node_seconds
            for i in intervals
        ]
        assert wastes[-1] <= wastes[0]
        assert wastes[-1] == pytest.approx(0.0, abs=1e-6)


class TestFigure11Behaviour:
    def test_filling_beats_strict_equipartitioning(self, evolution):
        durations = (SCALE.psa1_task_duration, SCALE.psa2_task_duration)
        filling = run_scenario(
            SCALE,
            announce_interval=SCALE.psa1_task_duration / 2,
            psa_task_durations=durations,
            strict_equipartition=False,
            evolution=evolution,
        )
        strict = run_scenario(
            SCALE,
            announce_interval=SCALE.psa1_task_duration / 2,
            psa_task_durations=durations,
            strict_equipartition=True,
            evolution=evolution,
        )
        assert (
            filling.metrics.used_resources_percent
            > strict.metrics.used_resources_percent
        )
        # The AMR itself is not disadvantaged by the filling policy.
        assert filling.metrics.amr_end_time == pytest.approx(
            strict.metrics.amr_end_time, rel=0.2
        )


class TestConservation:
    def test_all_nodes_returned_and_accounting_consistent(self, evolution):
        result = run_scenario(SCALE, overcommit=1.0, evolution=evolution)
        cluster = result.rms.platform.cluster("cluster0")
        assert cluster.free_count() == result.cluster_nodes
        # Accounting: every allocated node-second was charged to somebody.
        total = result.rms.accountant.total_used_node_seconds()
        psa_busy = sum(p.stats.total_busy_node_seconds for p in result.psas)
        assert total >= result.metrics.amr_used_node_seconds
        assert total == pytest.approx(
            result.metrics.amr_used_node_seconds + psa_busy, rel=0.15
        )

    def test_metrics_percentages_are_sane(self, evolution):
        result = run_scenario(SCALE, overcommit=1.0, evolution=evolution)
        assert 0.0 < result.metrics.used_resources_percent <= 100.0
        assert 0.0 <= result.metrics.psa_waste_percent < 50.0
