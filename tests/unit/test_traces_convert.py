"""Unit tests of the adaptive-job converter (repro.traces.convert)."""
from __future__ import annotations

import pytest

from repro.apps.evolving_predictable import FullyPredictableEvolvingApplication
from repro.apps.malleable import MalleableApplication
from repro.apps.moldable import MoldableApplication
from repro.apps.rigid import RigidApplication
from repro.core.errors import WorkloadError
from repro.traces import (
    AdaptiveMix,
    ConvertedJob,
    TraceModel,
    build_application,
    convert_trace,
    mix_counts,
    replay_horizon,
)


@pytest.fixture
def trace():
    return TraceModel().synthesize(120, seed=5)


class TestAdaptiveMix:
    def test_default_is_all_rigid(self, trace):
        jobs = convert_trace(trace, seed=0)
        assert all(j.kind == "rigid" for j in jobs)

    def test_fractions_realised_roughly(self, trace):
        mix = AdaptiveMix(rigid=0.25, moldable=0.25, malleable=0.25, evolving=0.25)
        counts = mix_counts(convert_trace(trace, mix=mix, seed=0))
        assert all(counts[kind] > 0 for kind in counts)

    def test_unnormalised_fractions_accepted(self):
        mix = AdaptiveMix(rigid=2.0, malleable=2.0)
        assert mix.pick(0.1) == "rigid"
        assert mix.pick(0.9) == "malleable"

    def test_parse(self):
        mix = AdaptiveMix.parse("rigid=0.5,evolving=0.5")
        assert mix.rigid == 0.5 and mix.evolving == 0.5 and mix.moldable == 0.0

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(WorkloadError, match="bad mix component"):
            AdaptiveMix.parse("elastic=1.0")

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveMix(rigid=0.0)
        with pytest.raises(ValueError):
            AdaptiveMix(rigid=-1.0, moldable=2.0)

    def test_dict_round_trip(self):
        mix = AdaptiveMix(rigid=0.1, moldable=0.2, malleable=0.3, evolving=0.4)
        assert AdaptiveMix.from_dict(mix.to_dict()) == mix


class TestConvertTrace:
    def test_deterministic_and_order_independent(self, trace):
        mix = AdaptiveMix(rigid=0.5, malleable=0.5)
        once = convert_trace(trace, mix=mix, seed=9)
        again = convert_trace(trace, mix=mix, seed=9)
        assert once == again
        # The kind of a job depends only on (seed, job_id), not on the
        # other jobs: converting a sub-trace assigns identical kinds.
        sub = trace.with_jobs(trace.jobs[40:80])
        sub_kinds = {j.job_id: j.kind for j in convert_trace(sub, mix=mix, seed=9)}
        full_kinds = {j.job_id: j.kind for j in once}
        assert all(full_kinds[job_id] == kind for job_id, kind in sub_kinds.items())

    def test_seed_changes_assignment(self, trace):
        mix = AdaptiveMix(rigid=0.5, malleable=0.5)
        a = convert_trace(trace, mix=mix, seed=1)
        b = convert_trace(trace, mix=mix, seed=2)
        assert [j.kind for j in a] != [j.kind for j in b]

    def test_max_nodes_clamps(self, trace):
        jobs = convert_trace(trace, seed=0, max_nodes=4)
        assert all(j.node_count <= 4 for j in jobs)

    def test_accepts_rigid_job_specs(self):
        from repro.workloads.generator import RigidJobSpec

        specs = [RigidJobSpec("a", 0.0, 4, 60.0), RigidJobSpec("b", 5.0, 2, 30.0)]
        jobs = convert_trace(specs, seed=0)
        assert [j.job_id for j in jobs] == ["a", "b"]

    def test_replay_horizon(self):
        jobs = [
            ConvertedJob("rigid", "a", 0.0, 1, 50.0),
            ConvertedJob("rigid", "b", 100.0, 1, 25.0),
        ]
        assert replay_horizon(jobs) == 125.0


class TestBuildApplication:
    def make(self, kind: str, nodes: int = 8, duration: float = 120.0):
        return ConvertedJob(kind, "j1", 0.0, nodes, duration)

    def test_rigid(self):
        app = build_application(self.make("rigid"), cluster_nodes=64)
        assert isinstance(app, RigidApplication)
        assert app.node_count == 8 and app.duration == 120.0

    def test_moldable_candidates_work_conserving(self):
        app = build_application(self.make("moldable"), cluster_nodes=64)
        assert isinstance(app, MoldableApplication)
        assert 8 in app.candidates
        assert all(1 <= n <= 64 for n in app.candidates)
        # Work is conserved: n * walltime(n) is the original area.
        for n in app.candidates:
            assert n * app.walltime_model(n) == pytest.approx(8 * 120.0)

    def test_malleable_keeps_half_as_minimum(self):
        app = build_application(self.make("malleable"), cluster_nodes=64)
        assert isinstance(app, MalleableApplication)
        assert app.min_nodes == 4 and app.duration == 120.0

    def test_evolving_phases_preserve_area(self):
        app = build_application(self.make("evolving"), cluster_nodes=64)
        assert isinstance(app, FullyPredictableEvolvingApplication)
        assert app.planned_node_seconds() == pytest.approx(8 * 120.0)
        assert [p.node_count for p in app.phases] == [4, 8, 4]

    def test_evolving_single_node_degenerates_to_one_phase(self):
        app = build_application(self.make("evolving", nodes=1), cluster_nodes=64)
        assert len(app.phases) == 1

    def test_cluster_clamp(self):
        app = build_application(self.make("rigid", nodes=128), cluster_nodes=16)
        assert app.node_count == 16

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            ConvertedJob("hybrid", "j", 0.0, 1, 1.0)
