#!/usr/bin/env python
"""Exploring the AMR models of Section 2 without running any simulation.

This example uses the analytical half of the library:

* draw a few random working-set evolutions (the acceleration--deceleration
  model of Section 2.1) and print their shape statistics;
* evaluate the speed-up model of Section 2.2 for the mesh sizes of Figure 2;
* compute, for one evolution, the dynamic allocation at 75 % efficiency, its
  equivalent static allocation and the end-time increase (Section 2.3) --
  i.e. the numbers that motivate RMS support for evolving applications.

Run with::

    python examples/amr_profile_exploration.py
"""
from __future__ import annotations

import numpy as np

from repro.metrics import format_table
from repro.models import (
    PAPER_SPEEDUP_MODEL,
    WorkingSetEvolution,
    dynamic_allocation,
    equivalent_static_allocation,
    static_allocation_range,
)
from repro.models.amr_evolution import AmrEvolutionParameters, normalized_profile
from repro.models.speedup import GIB_IN_MIB, TIB_IN_MIB


def describe_profiles() -> None:
    print("1. Random working-set evolutions (normalised, 1000 steps)")
    rows = []
    for seed in range(4):
        profile = normalized_profile(seed=seed)
        diffs = np.diff(profile)
        rows.append(
            (
                seed,
                round(float(profile[0]), 1),
                round(float(profile[-1]), 1),
                f"{100 * float(np.mean(diffs > 0)):.0f}%",
                round(float(diffs.max()), 1),
            )
        )
    print(format_table(["seed", "start", "end", "increasing steps", "largest jump"], rows))
    print()


def describe_speedup() -> None:
    print("2. Step duration (s) from the fitted speed-up model")
    model = PAPER_SPEEDUP_MODEL
    node_counts = [1, 16, 256, 4096]
    rows = []
    for size_gib in (12, 196, 3136):
        size = size_gib * GIB_IN_MIB
        rows.append(
            [f"{size_gib} GiB"] + [round(model.step_duration(n, size), 2) for n in node_counts]
        )
    print(format_table(["mesh size"] + [f"{n} nodes" for n in node_counts], rows))
    print()


def describe_static_vs_dynamic() -> None:
    print("3. Dynamic vs equivalent static allocation at 75% efficiency")
    evolution = WorkingSetEvolution.generate(
        3.16 * TIB_IN_MIB, seed=0, params=AmrEvolutionParameters()
    )
    dyn = dynamic_allocation(evolution, 0.75)
    static = equivalent_static_allocation(evolution, 0.75)
    choice_range = static_allocation_range(evolution, 0.75)
    rows = [
        ("peak working set", f"{evolution.peak_size_mib / TIB_IN_MIB:.2f} TiB"),
        ("dynamic allocation (min..peak nodes)", f"{int(dyn.node_counts.min())}..{dyn.peak_nodes}"),
        ("dynamic consumed area A(0.75)", f"{dyn.consumed_area / 1e6:.1f} M node*s"),
        ("equivalent static allocation n_eq", f"{static.n_eq:.0f} nodes"),
        ("end-time increase if static", f"{100 * static.end_time_increase:.2f}%"),
        (
            "defensible static range (no OOM, <= +10% area)",
            "none" if choice_range is None else f"{choice_range[0]}..{choice_range[1]} nodes",
        ),
    ]
    print(format_table(["quantity", "value"], rows))
    print()
    print(
        "Reading: a user who knew the whole evolution could pick n_eq and lose\n"
        "under 3% of end time -- but without that knowledge the defensible\n"
        "range is narrow, which is why the RMS should manage the evolution."
    )


def main() -> None:
    describe_profiles()
    describe_speedup()
    describe_static_vs_dynamic()


if __name__ == "__main__":
    main()
