"""The observability benchmark behind ``python -m repro obs bench``.

Measures six things and writes them as one ``BENCH_10.json`` report:

* **Scheduler throughput** (requests/second for one scheduling pass), with
  observation disabled *and* enabled -- both must beat the 5,000 req/s
  floor (10x the paper's 500 req/s figure), so instrumentation can never
  push the scheduler under it.
* **Trace ingest throughput** (SWF jobs parsed per second) against the
  trace subsystem's 100k jobs/s floor.
* **Engine dispatch throughput** over a realistic event population whose
  timestamps coalesce on whole seconds, against the kernel overhaul's
  1M events/s floor.
* **Engine dispatch overhead of the disabled observability layer**: the
  only cost :meth:`~repro.sim.engine.Simulator.run` pays when nothing
  observes is one ``observation_enabled()`` check per ``run()`` call, so
  comparing ``run()`` against a bare ``while sim.step(): pass`` loop over
  the same event population bounds the tracing-disabled overhead.  CI
  asserts it stays under 5%.
* **Distributed dispatch overhead**: run units per second pushed through
  the full coordinator/worker RPC path (in-thread transport, no-op
  simulation), so queue bookkeeping + framing + record reassembly can
  never dominate real campaign runs.  Floor: 200 units/s.
* **A wall-clock phase breakdown** of one instrumented fig9 run (trace
  ingest / scheduling / event dispatch), demonstrating the profiler
  end to end.

All wall-clock numbers are medians over several repeats; they are
machine-dependent by nature and belong only in ``BENCH_*.json`` artefacts,
never in deterministic result files.
"""
from __future__ import annotations

import json
import math
import statistics
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Optional

from .hooks import observe
from .metrics import MetricsRegistry
from .profiler import PhaseProfiler
from .tracer import EventTracer

__all__ = ["run_bench", "BENCH_FILE", "FLOORS"]

#: Default report file name; the "10" ties the artefact to this PR's issue.
BENCH_FILE = "BENCH_10.json"

#: Acceptance floors, identical to the standalone benchmark suites.
FLOORS: Dict[str, float] = {
    "scheduler_requests_per_second": 5_000.0,
    "scheduler_requests_per_second_observed": 5_000.0,
    "trace_ingest_jobs_per_second": 100_000.0,
    "engine_dispatch_events_per_second": 1_000_000.0,
    "tracing_disabled_overhead_pct": 5.0,  # ceiling, not a floor
    "dist_units_per_second": 200.0,
}


def _median_seconds(fn: Callable[[], None], repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


# --------------------------------------------------------------------- #
# Scheduler throughput (with and without observation)
# --------------------------------------------------------------------- #
def _scheduler_workload(num_apps: int = 16, requests_per_app: int = 8):
    from ..core import ApplicationRequests, Request, RequestType

    applications = {}
    for i in range(num_apps):
        app = ApplicationRequests(f"app{i}")
        app.add(Request("c0", 32, math.inf, RequestType.PREALLOCATION))
        for j in range(requests_per_app):
            app.add(
                Request("c0", 4 + (j % 8), 600.0 + 60.0 * j, RequestType.NON_PREEMPTIBLE)
            )
        app.add(Request("c0", 16, math.inf, RequestType.PREEMPTIBLE))
        applications[f"app{i}"] = app
    return applications


def bench_scheduler(repeats: int = 5) -> Dict[str, float]:
    """Requests/second of one scheduling pass, plain and observed."""
    from ..core import Scheduler

    scheduler = Scheduler({"c0": 4096})
    request_count = sum(
        len(app.all_requests()) for app in _scheduler_workload().values()
    )

    def plain_pass() -> None:
        scheduler.schedule(_scheduler_workload(), now=0.0)

    def observed_pass() -> None:
        with observe(tracer=EventTracer(), metrics=MetricsRegistry()):
            scheduler.schedule(_scheduler_workload(), now=0.0)

    plain = _median_seconds(plain_pass, repeats)
    observed = _median_seconds(observed_pass, repeats)
    return {
        "scheduler_requests_per_second": request_count / plain if plain else math.inf,
        "scheduler_requests_per_second_observed": (
            request_count / observed if observed else math.inf
        ),
    }


# --------------------------------------------------------------------- #
# Trace ingest throughput
# --------------------------------------------------------------------- #
def bench_trace_ingest(jobs: int = 20_000, repeats: int = 3) -> Dict[str, float]:
    """SWF jobs parsed per second from text."""
    from ..traces import TraceModel, dumps_swf, loads_swf

    text = dumps_swf(TraceModel().synthesize(jobs, seed=123))
    seconds = _median_seconds(lambda: loads_swf(text), repeats)
    return {
        "trace_ingest_jobs_per_second": jobs / seconds if seconds else math.inf
    }


# --------------------------------------------------------------------- #
# Engine dispatch throughput (batched same-timestamp buckets)
# --------------------------------------------------------------------- #
def bench_engine_dispatch(
    events: int = 200_000, per_timestamp: int = 100, repeats: int = 3
) -> Dict[str, float]:
    """Events dispatched per second through ``Simulator.run``.

    The population coalesces ``per_timestamp`` events on each whole-second
    timestamp, matching the shape of trace-driven workloads (SWF submit
    times are integer seconds); this is exactly the case the calendar-bucket
    dispatch batches into one heap operation per distinct time.
    """
    from ..sim.engine import Simulator

    def _noop() -> None:
        pass

    samples = []
    for _ in range(repeats):
        sim = Simulator()
        for i in range(events):
            sim.schedule_at(float(i // per_timestamp), _noop)
        started = time.perf_counter()
        sim.run()
        samples.append(time.perf_counter() - started)
    seconds = statistics.median(samples)
    return {
        "engine_dispatch_events_per_second": events / seconds if seconds else math.inf
    }


# --------------------------------------------------------------------- #
# Disabled-observability overhead on the engine hot path
# --------------------------------------------------------------------- #
def bench_engine_overhead(events: int = 50_000, repeats: int = 7) -> Dict[str, float]:
    """Overhead of ``Simulator.run`` over a bare step loop, in percent.

    ``run()`` performs the single per-call observation check plus its loop
    bookkeeping; the bare loop dispatches the identical event population
    through ``step()`` directly.  The difference is everything a disabled
    observability layer can possibly cost.
    """
    from ..sim.engine import Simulator

    def _noop() -> None:
        pass

    def populate() -> Simulator:
        sim = Simulator()
        for i in range(events):
            sim.schedule(float(i) * 1e-3, _noop)
        return sim

    def timed(body: Callable[[Simulator], None]) -> float:
        samples = []
        for _ in range(repeats):
            sim = populate()
            started = time.perf_counter()
            body(sim)
            samples.append(time.perf_counter() - started)
        return statistics.median(samples)

    def bare(sim: Simulator) -> None:
        while sim.step():
            pass

    def through_run(sim: Simulator) -> None:
        sim.run()

    bare_seconds = timed(bare)
    run_seconds = timed(through_run)
    overhead_pct = (
        100.0 * (run_seconds - bare_seconds) / bare_seconds if bare_seconds else 0.0
    )
    return {
        "engine_events_per_second": events / run_seconds if run_seconds else math.inf,
        "tracing_disabled_overhead_pct": overhead_pct,
    }


# --------------------------------------------------------------------- #
# Distributed dispatch overhead
# --------------------------------------------------------------------- #
def bench_dist(units: int = 64, workers: int = 4, repeats: int = 3) -> Dict[str, float]:
    """Run units per second through the coordinator/worker RPC path.

    Every unit is a no-op scenario run, so the measured rate is pure
    distribution overhead: queue bookkeeping, lease/result round-trips over
    the in-thread transport, and canonical record reassembly.
    """
    from ..campaign.runner import CampaignRunner
    from ..campaign.spec import CampaignSpec, ScenarioSpec
    from ..dist import ensure_noop_runner
    from ..dist.coordinator import Coordinator, DistConfig

    runner_name = ensure_noop_runner()
    spec = CampaignSpec(
        name="dist-overhead",
        scenarios=(ScenarioSpec(name="noop", runner=runner_name),),
        seeds=units,
    )
    tasks = CampaignRunner(spec).tasks()

    def one_campaign() -> None:
        outcome = Coordinator(
            tasks, DistConfig(transport="thread", poll_interval=0.001)
        ).run(workers)
        assert len(outcome.records) == units

    seconds = _median_seconds(one_campaign, repeats)
    return {"dist_units_per_second": units / seconds if seconds else math.inf}


# --------------------------------------------------------------------- #
# End-to-end phase breakdown of one instrumented run
# --------------------------------------------------------------------- #
def bench_phase_breakdown(scenario: str = "fig9", seed: int = 1) -> Dict[str, Dict[str, float]]:
    """Wall-clock phase breakdown of one fully instrumented scenario run."""
    from ..campaign import builtin  # noqa: F401  (registers the runners)
    from ..campaign.registry import consume_provenance, get_runner, resolve_scenarios

    spec = resolve_scenarios([scenario])[0]
    runner = get_runner(spec.runner)
    profiler = PhaseProfiler()
    consume_provenance()
    with observe(metrics=MetricsRegistry(), profiler=profiler):
        runner(spec, seed)
    consume_provenance()
    return profiler.snapshot()


# --------------------------------------------------------------------- #
def run_bench(
    output: Optional[str] = None,
    repeats: int = 5,
    check_floors: bool = True,
) -> Dict[str, object]:
    """Run every benchmark and return (and optionally write) the report."""
    results: Dict[str, float] = {}
    results.update(bench_scheduler(repeats=repeats))
    results.update(bench_trace_ingest(repeats=max(3, repeats // 2 + 1)))
    results.update(bench_engine_dispatch(repeats=max(3, repeats // 2 + 1)))
    results.update(bench_engine_overhead(repeats=max(7, repeats)))
    results.update(bench_dist(repeats=max(3, repeats // 2 + 1)))

    failures = []
    if results["scheduler_requests_per_second"] < FLOORS["scheduler_requests_per_second"]:
        failures.append(
            f"scheduler throughput {results['scheduler_requests_per_second']:.0f} "
            f"req/s below the {FLOORS['scheduler_requests_per_second']:.0f} floor"
        )
    if (
        results["scheduler_requests_per_second_observed"]
        < FLOORS["scheduler_requests_per_second_observed"]
    ):
        failures.append(
            "observed scheduler throughput "
            f"{results['scheduler_requests_per_second_observed']:.0f} req/s below "
            f"the {FLOORS['scheduler_requests_per_second_observed']:.0f} floor"
        )
    if results["trace_ingest_jobs_per_second"] < FLOORS["trace_ingest_jobs_per_second"]:
        failures.append(
            f"trace ingest {results['trace_ingest_jobs_per_second']:.0f} jobs/s "
            f"below the {FLOORS['trace_ingest_jobs_per_second']:.0f} floor"
        )
    if (
        results["engine_dispatch_events_per_second"]
        < FLOORS["engine_dispatch_events_per_second"]
    ):
        failures.append(
            f"engine dispatch {results['engine_dispatch_events_per_second']:.0f} "
            f"events/s below the "
            f"{FLOORS['engine_dispatch_events_per_second']:.0f} floor"
        )
    if results["tracing_disabled_overhead_pct"] > FLOORS["tracing_disabled_overhead_pct"]:
        failures.append(
            f"disabled-tracing overhead {results['tracing_disabled_overhead_pct']:.2f}% "
            f"above the {FLOORS['tracing_disabled_overhead_pct']:.1f}% ceiling"
        )
    if results["dist_units_per_second"] < FLOORS["dist_units_per_second"]:
        failures.append(
            f"dist dispatch {results['dist_units_per_second']:.0f} units/s "
            f"below the {FLOORS['dist_units_per_second']:.0f} floor"
        )

    report: Dict[str, object] = {
        "bench": "repro.obs",
        "issue": 10,
        "python": sys.version.split()[0],
        "floors": FLOORS,
        "results": results,
        "phase_seconds": bench_phase_breakdown(),
        "failures": failures,
        "passed": not failures,
    }
    if output:
        path = Path(output)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
    if check_floors and failures:
        raise AssertionError("; ".join(failures))
    return report
