"""Seeded random-number utilities for reproducible simulations.

All stochastic components of the library (the AMR working-set model, workload
generators, experiment replications) draw their randomness through
:class:`RandomSource` so that every experiment is exactly reproducible from a
single integer seed.

For parallel experiment campaigns the seed of every run is *derived*, not
drawn: :func:`derive_seed` hashes the root seed together with a stable task
identity (scenario name, replicate index, ...) so that the seed of a run does
not depend on how the runs are ordered or distributed over worker processes.
"""
from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Sequence, Union

import numpy as np

__all__ = ["RandomSource", "derive_seed", "spawn_streams", "stable_fingerprint"]

#: derive_seed() returns non-negative seeds strictly below this bound, which
#: keeps them inside the range numpy accepts as a single-integer seed.
MAX_DERIVED_SEED = 2**63


def derive_seed(root: Optional[int], *components) -> int:
    """Derive a child seed from *root* and a stable task identity.

    The derivation hashes (SHA-256) the textual representation of the root
    seed and every component, so it is

    * **deterministic** across processes and Python versions (unlike the
      built-in ``hash``, which is salted per process);
    * **order-independent across tasks**: the seed of task *i* never depends
      on how many other tasks ran before it, which makes parallel campaigns
      reproducible regardless of worker scheduling order;
    * **well-mixed**: nearby roots / replicate indices yield unrelated seeds.

    Components may be ints, strings, floats or tuples thereof; they are
    separated by an escape byte so ``("ab", "c")`` and ``("a", "bc")`` derive
    different seeds.
    """
    digest = hashlib.sha256()
    digest.update(repr(None if root is None else int(root)).encode("utf-8"))
    for component in components:
        digest.update(b"\x1f")
        digest.update(repr(component).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big") % MAX_DERIVED_SEED


def stable_fingerprint(data: Union[bytes, str]) -> str:
    """Short, stable SHA-256 content fingerprint (for provenance records).

    Trace and workload provenance records carry this fingerprint of the raw
    input bytes so that two campaign runs can be compared not just by the
    *name* of the trace file they replayed but by its *content* -- renamed or
    silently-edited inputs become visible in the result store.
    """
    if isinstance(data, str):
        data = data.encode("utf-8")
    return hashlib.sha256(data).hexdigest()[:16]


class RandomSource:
    """Thin, documented wrapper around :class:`numpy.random.Generator`."""

    def __init__(self, seed: Optional[int] = None):
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    @property
    def rng(self) -> np.random.Generator:
        """The underlying numpy generator (for vectorised draws)."""
        return self._rng

    def uniform_int(self, low: int, high: int) -> int:
        """Uniform integer in the closed interval ``[low, high]``."""
        return int(self._rng.integers(low, high + 1))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._rng.uniform(low, high))

    def gaussian(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._rng.normal(mean, std))

    def gaussian_array(self, mean: float, std: float, size: int) -> np.ndarray:
        return self._rng.normal(mean, std, size)

    def exponential(self, mean: float) -> float:
        return float(self._rng.exponential(mean))

    def lognormal(self, mean: float, sigma: float) -> float:
        return float(self._rng.lognormal(mean, sigma))

    def choice(self, options: Sequence):
        return options[int(self._rng.integers(0, len(options)))]

    def spawn(self) -> "RandomSource":
        """Derive an independent child stream (stable under numpy spawning)."""
        child_seed = int(self._rng.integers(0, 2**31 - 1))
        return RandomSource(child_seed)

    def derive(self, *components) -> "RandomSource":
        """Derive an independent child stream from a stable identity.

        Unlike :meth:`spawn`, this does not advance (or depend on) the state
        of this source: the child is fully determined by this source's seed
        and *components* (see :func:`derive_seed`), so it can be used from
        parallel workers in any order.

        An unseeded source has no reproducible identity to derive from, so
        its children are entropy-seeded (still independent, never the
        deterministic ``derive_seed(None, ...)`` constant).
        """
        if self.seed is None:
            return RandomSource(None)
        return RandomSource(derive_seed(self.seed, *components))


def spawn_streams(seed: Optional[int], count: int) -> Iterator[RandomSource]:
    """Yield *count* independent :class:`RandomSource` streams from one seed."""
    root = RandomSource(seed)
    for _ in range(count):
        yield root.spawn()
