"""Integration tests of routing x topology federation campaigns.

The ISSUE-5 acceptance bar: a routing x topology campaign matrix must be
byte-identical at 1 vs 4 workers, every routing variant of one scenario
must fan in the exact same workload (same derived seed), and the records
must carry the federation columns the result store groups by.
"""
from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.campaign.cli import main as cli_main
from repro.federation import ClusterSpec, FederationSpec

ROUTINGS = ("round-robin", "least-loaded")

#: A short, contended synthetic trace so routing decisions actually matter.
TRACE = {
    "model": {
        "arrivals": {"kind": "poisson", "rate": 1.0 / 15.0},
        "durations": {
            "kind": "log_normal_duration",
            "log_mean": 4.5,
            "log_sigma": 0.5,
            "min_seconds": 30.0,
            "max_seconds": 600.0,
        },
        "nodes": {
            "kind": "log_uniform_nodes",
            "min_nodes": 1,
            "max_nodes": 8,
            "power_of_two": True,
        },
    },
    "job_count": 30,
    "transforms": [{"kind": "clamp_nodes", "max_nodes": 8}],
}

TOPOLOGY = FederationSpec(
    clusters=(ClusterSpec(name="east", nodes=8), ClusterSpec(name="west", nodes=16)),
    routing="any",
)


def federated_campaign(workers: int) -> CampaignSpec:
    scenario = ScenarioSpec(
        name="mini-fed",
        runner="amr_psa",
        workload=WorkloadSpec(include_amr=False, trace=TRACE),
        federation=TOPOLOGY,
    )
    return CampaignSpec(
        name="routing-matrix",
        scenarios=(scenario,),
        seeds=2,
        root_seed=11,
        workers=workers,
        routings=ROUTINGS,
    )


class TestRoutingMatrixDeterminism:
    def test_byte_identical_store_rows_at_1_and_4_workers(self, tmp_path):
        blobs = {}
        for workers in (1, 4):
            store = ResultStore(tmp_path / f"w{workers}")
            result = CampaignRunner(federated_campaign(workers), store=store).run()
            assert result.workers == min(workers, result.spec.run_count)
            blobs[workers] = store.runs_path("routing-matrix").read_bytes()
        assert blobs[1] == blobs[4]

    def test_matrix_shape_and_seed_sharing(self):
        spec = federated_campaign(1)
        assert spec.run_count == len(ROUTINGS) * 2
        tasks = CampaignRunner(spec).tasks()
        assert len(tasks) == spec.run_count
        # Every routing variant of one replicate shares its seed: identical
        # workload fanned into the same topology, directly comparable.
        by_replicate = {}
        for task in tasks:
            by_replicate.setdefault(task.replicate, set()).add(task.seed)
        for replicate, seeds in by_replicate.items():
            assert len(seeds) == 1, (replicate, seeds)
        assert {t.scenario.name for t in tasks} == {
            f"mini-fed+{r}" for r in ROUTINGS
        }
        assert {t.base_scenario for t in tasks} == {"mini-fed"}

    def test_records_carry_federation_columns(self, tmp_path):
        store = ResultStore(tmp_path)
        result = CampaignRunner(federated_campaign(1), store=store).run()
        for record in result.records:
            assert record["base_scenario"] == "mini-fed"
            assert record["routing"] in ROUTINGS
            assert record["topology"] == "2x[east:8+west:16]"
            assert record["scenario"] == f"mini-fed+{record['routing']}"
            metrics = record["metrics"]
            assert metrics["fed_clusters"] == 2.0
            assert metrics["fed_routed[east]"] + metrics["fed_routed[west]"] == 30
        matrix = store.routing_matrix("routing-matrix")
        assert set(matrix) == {"mini-fed"}
        assert set(matrix["mini-fed"]) == set(ROUTINGS)
        for medians in matrix["mini-fed"].values():
            assert medians

    def test_spec_round_trips_with_federation_and_routings(self):
        spec = federated_campaign(2)
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.routings == ROUTINGS
        assert again.scenarios[0].federation == TOPOLOGY
        # JSON-level round trip of the nested federation too.
        blob = json.loads(spec.to_json())
        assert blob["scenarios"][0]["federation"]["routing"] == "any"

    def test_routing_matrix_requires_federated_scenarios(self):
        with pytest.raises(ValueError, match="requires federated scenarios"):
            CampaignSpec(
                name="bad",
                scenarios=(ScenarioSpec(name="plain"),),
                routings=ROUTINGS,
            )


class TestFederationCli:
    def test_campaign_run_with_routings_flag(self, tmp_path, capsys):
        code = cli_main(
            [
                "campaign", "run",
                "--scenarios", "fed-dual-trace",
                "--routings", "round-robin,least-loaded",
                "--results-dir", str(tmp_path),
                "--name", "fed-cli",
                "--quiet",
            ]
        )
        assert code == 0
        capsys.readouterr()
        store = ResultStore(tmp_path)
        records = store.load_records("fed-cli")
        assert {r["routing"] for r in records} == {"round-robin", "least-loaded"}
        code = cli_main(
            ["campaign", "report", "fed-cli", "--results-dir", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "routing comparison" in out
        assert "per-cluster breakdown" in out

    def test_routings_flag_rejects_unfederated_scenarios(self, tmp_path, capsys):
        code = cli_main(
            [
                "campaign", "run",
                "--scenarios", "baseline-dynamic",
                "--routings", "round-robin",
                "--results-dir", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 2
        assert "requires federated scenarios" in capsys.readouterr().err

    def test_routings_flag_rejects_unknown_routing(self, tmp_path, capsys):
        code = cli_main(
            [
                "campaign", "run",
                "--scenarios", "fed-dual-trace",
                "--routings", "teleport",
                "--results-dir", str(tmp_path),
                "--quiet",
            ]
        )
        assert code == 2
        assert "unknown routing policy" in capsys.readouterr().err

    def test_federation_list_and_describe(self, capsys):
        assert cli_main(["federation", "list"]) == 0
        out = capsys.readouterr().out
        for routing in ("any", "round-robin", "least-loaded", "best-fit",
                        "random", "affinity"):
            assert routing in out
        assert "hetero3" in out
        assert cli_main(["federation", "describe", "least-loaded"]) == 0
        assert "least committed work" in capsys.readouterr().out
        assert cli_main(["federation", "describe", "dual", "--json"]) == 0
        blob = json.loads(capsys.readouterr().out)
        assert [c["name"] for c in blob["clusters"]] == ["east", "west"]
        assert cli_main(["federation", "describe", "nope"]) == 2
        assert "unknown routing policy or topology" in capsys.readouterr().err

    def test_federation_run_prints_breakdown(self, capsys):
        code = cli_main(
            [
                "federation", "run",
                "--scenario", "trace-replay",
                "--topology", "dual",
                "--routing", "round-robin",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fed_util_pct[east]" in out
        assert "fed_util_pct[west]" in out

    def test_federation_run_rejects_unknown_scenario(self, capsys):
        assert cli_main(["federation", "run", "--scenario", "ghost"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
