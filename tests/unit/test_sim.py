"""Unit tests of the discrete-event simulation engine."""
from __future__ import annotations

import math

import pytest

from repro.core import SimulationError
from repro.sim import RandomSource, Simulator, derive_seed, spawn_streams
from repro.sim.engine import EventHandle, callback_label
from repro.sim.randomness import MAX_DERIVED_SEED


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(10, order.append, "b")
        sim.schedule(5, order.append, "a")
        sim.schedule(20, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 20.0

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(5, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(42.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42.0]

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(5.0, lambda: None)

    def test_cancel(self):
        sim = Simulator()
        seen = []
        handle = sim.schedule(5, seen.append, "x")
        handle.cancel()
        sim.run()
        assert seen == []
        assert not handle.pending()

    def test_run_until(self):
        sim = Simulator()
        seen = []
        sim.schedule(5, seen.append, "early")
        sim.schedule(50, seen.append, "late")
        sim.run(until=10)
        assert seen == ["early"]
        assert sim.now == 10.0
        sim.run()
        assert seen == ["early", "late"]

    def test_events_can_schedule_events(self):
        sim = Simulator()
        seen = []

        def first():
            seen.append(sim.now)
            sim.schedule(5, second)

        def second():
            seen.append(sim.now)

        sim.schedule(1, first)
        sim.run()
        assert seen == [1.0, 6.0]

    def test_peek_and_empty(self):
        sim = Simulator()
        assert sim.empty()
        assert math.isinf(sim.peek())
        sim.schedule(3, lambda: None)
        assert sim.peek() == 3.0
        assert not sim.empty()
        sim.run()
        assert sim.empty()

    def test_infinite_loop_guard(self):
        sim = Simulator()

        def rescheduler():
            sim.schedule(0.0, rescheduler)

        sim.schedule(0.0, rescheduler)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1, lambda: None)
        sim.run()
        assert sim.processed_events == 5


class _Untouchable:
    """Stand-in for the event queue that fails on any access."""

    def __getattribute__(self, name):
        raise AssertionError("empty() must not inspect the event queue")


class TestPendingCounter:
    def test_empty_after_mass_cancellation(self):
        sim = Simulator()
        handles = [sim.schedule(5, lambda: None) for _ in range(5_000)]
        for handle in handles:
            handle.cancel()
        assert sim.empty()

    def test_empty_is_constant_time(self):
        # empty() must be answerable from the pending counter alone: replace
        # the queue structures with objects that explode on any access.
        sim = Simulator()
        handle = sim.schedule(5, lambda: None)
        sim._buckets = _Untouchable()
        sim._times = _Untouchable()
        assert not sim.empty()
        handle.cancelled = True
        sim._pending -= 1
        assert sim.empty()

    def test_counter_tracks_schedule_cancel_and_fire(self):
        sim = Simulator()
        keep = sim.schedule(1, lambda: None)
        drop = sim.schedule(2, lambda: None)
        assert not sim.empty()
        drop.cancel()
        drop.cancel()  # double-cancel must not decrement twice
        assert not sim.empty()
        sim.run()
        assert sim.empty()
        assert keep.fired and not drop.fired

    def test_interrupted_process_leaves_queue_empty(self):
        sim = Simulator()

        def worker():
            while True:
                yield 10

        proc = sim.process(worker())
        sim.schedule(25, proc.interrupt)
        sim.run()
        assert sim.empty()


class TestBatchedDispatch:
    """Same-timestamp batches must be indistinguishable from stepping."""

    def test_mid_batch_scheduling_at_same_timestamp(self):
        sim = Simulator()
        order = []

        def b():
            order.append("b")
            # Same timestamp as the batch being fired: must run after it,
            # in schedule order, not be lost and not jump the queue.
            sim.schedule(0.0, order.append, "d")
            sim.schedule(0.0, order.append, "e")

        sim.schedule(5, order.append, "a")
        sim.schedule(5, b)
        sim.schedule(5, order.append, "c")
        sim.run()
        assert order == ["a", "b", "c", "d", "e"]
        assert sim.now == 5.0

    def test_mid_batch_cancellation_is_honoured(self):
        sim = Simulator()
        order = []
        victim = None

        def killer():
            order.append("killer")
            victim.cancel()

        sim.schedule(5, killer)
        victim = sim.schedule(5, order.append, "victim")
        sim.schedule(5, order.append, "survivor")
        sim.run()
        assert order == ["killer", "survivor"]
        assert sim.empty()

    def test_step_and_run_agree_on_tie_order(self):
        def drive(runner):
            sim = Simulator()
            order = []
            for label in "abc":
                sim.schedule(7, order.append, label)
            sim.schedule(3, order.append, "first")
            runner(sim)
            return order

        stepped = drive(lambda sim: [sim.step() for _ in range(4)])
        ran = drive(lambda sim: sim.run())
        assert stepped == ran == ["first", "a", "b", "c"]

    def test_event_handle_orders_by_time_then_seq(self):
        sim = Simulator()
        h1 = sim.schedule(5, lambda: None)
        h2 = sim.schedule(5, lambda: None)
        h3 = sim.schedule(4, lambda: None)
        assert h3 < h1 < h2
        assert sorted([h2, h3, h1]) == [h3, h1, h2]
        # Direct construction keeps the same (time, seq) order.
        a = EventHandle(1.0, 0, lambda: None, (), {})
        b = EventHandle(1.0, 1, lambda: None, (), {})
        assert a < b and not b < a


class TestCallbackLabels:
    def test_plain_function_label(self):
        def my_callback():
            pass

        assert callback_label(my_callback).endswith("my_callback")

    def test_bound_method_label_cached_across_instances(self):
        class Thing:
            def cb(self):
                pass

        a, b = Thing(), Thing()
        label_a = callback_label(a.cb)
        label_b = callback_label(b.cb)
        assert label_a.endswith("Thing.cb")
        # Memoized on the code object: the exact same string comes back for
        # every instance and every repeated call.
        assert label_a is label_b
        assert callback_label(a.cb) is label_a

    def test_process_label_uses_process_name(self):
        sim = Simulator()

        def worker():
            yield 1

        proc = sim.process(worker(), name="pump")
        assert callback_label(proc._step) == "process:pump"
        assert callback_label(proc._step) is callback_label(proc._step)


class TestProcesses:
    def test_generator_process_sleeps(self):
        sim = Simulator()
        seen = []

        def worker():
            seen.append(sim.now)
            yield 10
            seen.append(sim.now)
            yield 5
            seen.append(sim.now)

        proc = sim.process(worker(), name="worker")
        sim.run()
        assert seen == [0.0, 10.0, 15.0]
        assert proc.finished

    def test_yield_none_resumes_immediately(self):
        sim = Simulator()
        seen = []

        def worker():
            yield None
            seen.append(sim.now)

        sim.process(worker())
        sim.run()
        assert seen == [0.0]

    def test_negative_yield_is_an_error(self):
        sim = Simulator()

        def worker():
            yield -1

        sim.process(worker())
        with pytest.raises(SimulationError):
            sim.run()

    def test_interrupt_stops_process(self):
        sim = Simulator()
        seen = []

        def worker():
            while True:
                seen.append(sim.now)
                yield 10

        proc = sim.process(worker())
        sim.schedule(25, proc.interrupt)
        sim.run()
        assert seen == [0.0, 10.0, 20.0]


class TestRandomSource:
    def test_same_seed_same_stream(self):
        a, b = RandomSource(42), RandomSource(42)
        assert [a.uniform_int(0, 100) for _ in range(5)] == [
            b.uniform_int(0, 100) for _ in range(5)
        ]

    def test_uniform_int_bounds(self):
        rng = RandomSource(1)
        values = [rng.uniform_int(3, 7) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 7

    def test_gaussian_array_shape(self):
        assert RandomSource(0).gaussian_array(0, 1, 10).shape == (10,)

    def test_choice(self):
        assert RandomSource(0).choice(["only"]) == "only"

    def test_spawn_streams_are_independent_but_reproducible(self):
        s1 = [s.uniform() for s in spawn_streams(7, 3)]
        s2 = [s.uniform() for s in spawn_streams(7, 3)]
        assert s1 == s2
        assert len(set(s1)) == 3


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, "fig9", 3) == derive_seed(0, "fig9", 3)

    def test_depends_on_every_component(self):
        base = derive_seed(0, "fig9", 3)
        assert derive_seed(1, "fig9", 3) != base
        assert derive_seed(0, "fig10", 3) != base
        assert derive_seed(0, "fig9", 4) != base

    def test_component_boundaries_matter(self):
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_none_root_is_valid_and_stable(self):
        assert derive_seed(None, "x") == derive_seed(None, "x")
        assert derive_seed(None, "x") != derive_seed(0, "x")

    def test_range(self):
        for replicate in range(50):
            seed = derive_seed(0, "scenario", replicate)
            assert 0 <= seed < MAX_DERIVED_SEED

    def test_no_collisions_over_grid(self):
        seeds = {
            derive_seed(0, scenario, replicate)
            for scenario in ("a", "b", "c", "d")
            for replicate in range(250)
        }
        assert len(seeds) == 1000

    def test_feeds_numpy_generator(self):
        a = RandomSource(derive_seed(0, "s", 0)).uniform()
        b = RandomSource(derive_seed(0, "s", 0)).uniform()
        assert a == b

    def test_derive_method_is_state_independent(self):
        source = RandomSource(42)
        source.uniform()  # advance the parent state
        child_after = source.derive("task", 1)
        child_fresh = RandomSource(42).derive("task", 1)
        assert child_after.uniform() == child_fresh.uniform()

    def test_derive_from_unseeded_source_stays_independent(self):
        # Entropy-seeded sources have no stable identity; their derived
        # children must not collapse onto the derive_seed(None, ...) constant.
        a = RandomSource().derive("workload")
        b = RandomSource().derive("workload")
        assert a.uniform() != b.uniform()
