"""Speed-up model of an AMR application (paper Section 2.2).

The duration of one AMR step as a function of the allocated node count *n*
and the data size *S* (MiB) is modelled as

.. math::

    t(n, S) = A \\cdot S / n + B \\cdot n + C \\cdot S + D

where *A* captures the perfectly parallelisable work, *B* the parallelisation
overhead, *C* the per-node cost per unit of data (weak-scalability limit) and
*D* a constant term.  The constants below are the paper's fit against the
Uintah AMR measurements of Luitjens & Berzins (IPDPS 2010); the fit is within
15 % of every measured point.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Iterable, List, Tuple

import numpy as np

__all__ = ["SpeedupModel", "PAPER_SPEEDUP_MODEL", "GIB_IN_MIB", "TIB_IN_MIB"]

#: MiB per GiB / TiB, used when reproducing Figure 2's data sizes.
GIB_IN_MIB = 1024.0
TIB_IN_MIB = 1024.0 * 1024.0


@dataclass(frozen=True)
class SpeedupModel:
    """The four-parameter step-duration model.

    Units: *A* is s·node/MiB, *B* is s/node, *C* is s/MiB, *D* is s.
    """

    a: float = 7.26e-3
    b: float = 1.23e-4
    c: float = 1.13e-6
    d: float = 1.38
    #: Peak data size of the fitted dataset (3.16 TiB), in MiB.
    s_max_mib: float = 3.16 * TIB_IN_MIB

    def __post_init__(self) -> None:
        if min(self.a, self.b, self.c) <= 0 or self.d < 0:
            raise ValueError("model coefficients must be positive (D non-negative)")
        if self.s_max_mib <= 0:
            raise ValueError("s_max_mib must be positive")

    # ------------------------------------------------------------------ #
    # Core quantities
    # ------------------------------------------------------------------ #
    def step_duration(self, nodes: float, size_mib: float) -> float:
        """Duration (seconds) of one step on *nodes* nodes with *size_mib* data.

        Memoized: the simulation evaluates the model for the same
        ``(nodes, size)`` pairs over and over (the working set only changes
        once per AMR step while the RMS re-schedules every second), so the
        instances share a bounded LRU cache keyed by the model and the
        arguments.
        """
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        if size_mib < 0:
            raise ValueError("size_mib must be non-negative")
        return self._step_duration_cached(float(nodes), float(size_mib))

    @lru_cache(maxsize=1 << 17)
    def _step_duration_cached(self, nodes: float, size_mib: float) -> float:
        return self.a * size_mib / nodes + self.b * nodes + self.c * size_mib + self.d

    def step_duration_array(self, nodes: np.ndarray, size_mib: float) -> np.ndarray:
        """Vectorised :meth:`step_duration` over an array of node counts."""
        nodes = np.asarray(nodes, dtype=float)
        if (nodes <= 0).any():
            raise ValueError("nodes must be positive")
        return self.a * size_mib / nodes + self.b * nodes + self.c * size_mib + self.d

    def speedup(self, nodes: float, size_mib: float) -> float:
        """Speed-up relative to a single node."""
        return self.step_duration(1, size_mib) / self.step_duration(nodes, size_mib)

    def efficiency(self, nodes: float, size_mib: float) -> float:
        """Parallel efficiency: speed-up divided by the node count."""
        if nodes <= 0:
            raise ValueError("nodes must be positive")
        return self.speedup(nodes, size_mib) / nodes

    # ------------------------------------------------------------------ #
    # Targeting a given efficiency (what the AMR application does)
    # ------------------------------------------------------------------ #
    def nodes_for_efficiency(
        self, size_mib: float, target_efficiency: float, max_nodes: int = 1_000_000
    ) -> int:
        """Largest node count whose efficiency is still >= *target_efficiency*.

        Efficiency decreases monotonically with the node count, so this is the
        node count an application targeting that efficiency should allocate
        for the current data size.  Never smaller than 1.
        """
        if not 0 < target_efficiency <= 1:
            raise ValueError("target_efficiency must be in (0, 1]")
        if size_mib < 0:
            raise ValueError("size_mib must be non-negative")
        return self._nodes_for_efficiency_cached(
            float(size_mib), float(target_efficiency), int(max_nodes)
        )

    @lru_cache(maxsize=1 << 16)
    def _nodes_for_efficiency_cached(
        self, size_mib: float, target_efficiency: float, max_nodes: int
    ) -> int:
        if self.efficiency(1, size_mib) < target_efficiency:
            return 1
        lo, hi = 1, 2
        while hi < max_nodes and self.efficiency(hi, size_mib) >= target_efficiency:
            lo, hi = hi, hi * 2
        hi = min(hi, max_nodes)
        # Binary search for the last node count meeting the target.
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.efficiency(mid, size_mib) >= target_efficiency:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def consumed_area(self, nodes: float, size_mib: float) -> float:
        """Node-seconds consumed by one step (node count x step duration)."""
        return nodes * self.step_duration(nodes, size_mib)

    # ------------------------------------------------------------------ #
    # Figure 2 helpers
    # ------------------------------------------------------------------ #
    def duration_series(
        self, node_counts: Iterable[int], size_mib: float
    ) -> List[Tuple[int, float]]:
        """``(nodes, duration)`` pairs for one data size (one Figure 2 curve)."""
        return [(int(n), self.step_duration(n, size_mib)) for n in node_counts]

    def optimal_nodes(self, size_mib: float) -> float:
        """Node count that minimises the step duration (d t/d n = 0).

        Beyond this point adding nodes *increases* the step duration because
        the parallelisation overhead ``B * n`` dominates.
        """
        if size_mib <= 0:
            return 1.0
        return math.sqrt(self.a * size_mib / self.b)


    # ------------------------------------------------------------------ #
    # Cache management (shared, bounded LRU caches across all instances)
    # ------------------------------------------------------------------ #
    @classmethod
    def cache_stats(cls) -> Dict[str, Tuple[int, int, int, int]]:
        """``functools.lru_cache`` info of every memoized model method."""
        return {
            "step_duration": tuple(cls._step_duration_cached.cache_info()),
            "nodes_for_efficiency": tuple(cls._nodes_for_efficiency_cached.cache_info()),
        }

    @classmethod
    def clear_caches(cls) -> None:
        """Drop all memoized evaluations (mainly for benchmarks and tests)."""
        cls._step_duration_cached.cache_clear()
        cls._nodes_for_efficiency_cached.cache_clear()


#: The exact constants published in the paper (Section 2.2).
PAPER_SPEEDUP_MODEL = SpeedupModel()
