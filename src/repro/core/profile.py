"""Step-function Cluster Availability Profiles (CAPs).

The paper (Sections 3.1.4 and A.3) represents resource availability as a step
function: the x-axis is absolute time, the y-axis is a node count.  Views are
per-cluster collections of such profiles and every scheduling primitive of
CooRMv2 (``toView``, ``fit``, ``eqSchedule``, Conservative Back-Filling)
manipulates them.

This module provides :class:`StepFunction`, an immutable-by-convention
piecewise-constant function on ``[0, +inf)`` with the algebra the paper
requires:

* point evaluation (``cap(t)`` in the paper),
* ``+``, ``-``, pointwise ``max`` (the paper's union) and ``min``,
* clipping at zero,
* minimum over a time window,
* ``find_hole`` -- earliest time a rectangle of ``n`` nodes x ``duration``
  seconds fits below the profile,
* rectangle addition / subtraction,
* integration (node-seconds) over a window.

The representation is a compact list of breakpoints: ``times[i]`` is the start
of segment ``i`` and ``values[i]`` its constant value; the last segment
extends to ``+inf``.  ``times[0]`` is always ``0.0``.
"""
from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Sequence, Tuple

from .errors import ProfileError
from .types import Time

__all__ = ["StepFunction"]

_EPS = 1e-9


def _merge_breakpoints(a: "StepFunction", b: "StepFunction") -> List[Time]:
    """Return the sorted union of the breakpoints of two profiles."""
    times: List[Time] = []
    ia = ib = 0
    ta, tb = a._times, b._times
    while ia < len(ta) or ib < len(tb):
        if ib >= len(tb) or (ia < len(ta) and ta[ia] <= tb[ib]):
            t = ta[ia]
            ia += 1
        else:
            t = tb[ib]
            ib += 1
        if not times or t > times[-1]:
            times.append(t)
    return times


class StepFunction:
    """A right-continuous piecewise-constant function of time.

    Values are numeric (node counts in almost all uses).  Instances should be
    treated as immutable: all arithmetic returns new objects.

    Parameters
    ----------
    times:
        Segment start times.  Must be strictly increasing and start at 0.
    values:
        Segment values, same length as *times*.
    """

    __slots__ = ("_times", "_values")

    def __init__(self, times: Sequence[Time] = (0.0,), values: Sequence[float] = (0.0,)):
        times = [float(t) for t in times]
        values = [float(v) for v in values]
        if len(times) != len(values):
            raise ProfileError("times and values must have the same length")
        if not times:
            times, values = [0.0], [0.0]
        if times[0] != 0.0:
            raise ProfileError("the first breakpoint must be at t=0")
        for i in range(1, len(times)):
            if times[i] <= times[i - 1]:
                raise ProfileError("breakpoints must be strictly increasing")
            if not math.isfinite(times[i]):
                raise ProfileError("breakpoints must be finite")
        self._times = times
        self._values = values
        self._compact()

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def constant(cls, value: float) -> "StepFunction":
        """A profile equal to *value* everywhere."""
        return cls([0.0], [float(value)])

    @classmethod
    def zero(cls) -> "StepFunction":
        """The everywhere-zero profile."""
        return cls.constant(0.0)

    @classmethod
    def from_duration_pairs(cls, pairs: Iterable[Tuple[Time, float]]) -> "StepFunction":
        """Build a profile from the paper's ``[(duration, value), ...]`` form.

        The profile takes the listed values for the listed durations starting
        at ``t = 0`` and is 0 afterwards.  For example
        ``[(3600, 4), (3600, 3)]`` means 4 nodes during the first hour, 3
        during the second and none afterwards.
        """
        times: List[Time] = [0.0]
        values: List[float] = []
        t = 0.0
        for duration, value in pairs:
            if duration <= 0:
                raise ProfileError("durations must be positive")
            values.append(float(value))
            t += float(duration)
            times.append(t)
        values.append(0.0)
        return cls(times, values)

    @classmethod
    def rectangle(cls, start: Time, duration: Time, height: float) -> "StepFunction":
        """A profile that is *height* on ``[start, start+duration)`` and 0 elsewhere."""
        if duration < 0:
            raise ProfileError("duration must be non-negative")
        if start < 0:
            raise ProfileError("start must be non-negative")
        if duration == 0 or height == 0:
            return cls.zero()
        if math.isinf(duration):
            if start == 0:
                return cls.constant(height)
            return cls([0.0, float(start)], [0.0, float(height)])
        if start == 0:
            return cls([0.0, float(duration)], [float(height), 0.0])
        return cls([0.0, float(start), float(start + duration)], [0.0, float(height), 0.0])

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def times(self) -> Tuple[Time, ...]:
        """Segment start times (read-only)."""
        return tuple(self._times)

    @property
    def values(self) -> Tuple[float, ...]:
        """Segment values (read-only)."""
        return tuple(self._values)

    def segments(self) -> Iterator[Tuple[Time, Time, float]]:
        """Yield ``(start, end, value)`` triples; the last end is ``+inf``."""
        for i, (t, v) in enumerate(zip(self._times, self._values)):
            end = self._times[i + 1] if i + 1 < len(self._times) else math.inf
            yield t, end, v

    def breakpoints(self) -> Tuple[Time, ...]:
        """Alias of :attr:`times`, matching scheduler terminology."""
        return self.times

    def is_zero(self) -> bool:
        """True if the profile is 0 everywhere."""
        return all(abs(v) < _EPS for v in self._values)

    def is_non_negative(self) -> bool:
        """True if the profile never goes below zero."""
        return all(v >= -_EPS for v in self._values)

    def max_value(self) -> float:
        """The maximum value taken anywhere."""
        return max(self._values)

    def min_value(self) -> float:
        """The minimum value taken anywhere."""
        return min(self._values)

    def _compact(self) -> None:
        """Merge adjacent segments with equal values (in place, constructor only)."""
        times: List[Time] = [self._times[0]]
        values: List[float] = [self._values[0]]
        for t, v in zip(self._times[1:], self._values[1:]):
            if abs(v - values[-1]) < _EPS:
                continue
            times.append(t)
            values.append(v)
        self._times = times
        self._values = values

    # ------------------------------------------------------------------ #
    # Point and window queries
    # ------------------------------------------------------------------ #
    def __call__(self, t: Time) -> float:
        """Value at time *t* (the paper's ``cap(t)``)."""
        return self.value_at(t)

    def value_at(self, t: Time) -> float:
        """Value at time *t*; times before 0 evaluate as 0."""
        if t < 0:
            return 0.0
        # binary search for the last breakpoint <= t
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return self._values[lo]

    def min_over(self, start: Time, end: Time) -> float:
        """Minimum value over ``[start, end)``.

        An empty window (``end <= start``) returns the value at *start*.
        """
        if end <= start:
            return self.value_at(start)
        best = self.value_at(start)
        for t, v in zip(self._times, self._values):
            if start < t < end:
                best = min(best, v)
        return best

    def integrate(self, start: Time = 0.0, end: Time = math.inf) -> float:
        """Integral (value x time, i.e. node-seconds) over ``[start, end)``.

        Integrating to ``+inf`` is allowed only if the profile is eventually
        zero; otherwise :class:`ProfileError` is raised.
        """
        if end <= start:
            return 0.0
        total = 0.0
        for seg_start, seg_end, value in self.segments():
            lo = max(seg_start, start)
            hi = min(seg_end, end)
            if hi <= lo:
                continue
            if math.isinf(hi):
                if abs(value) < _EPS:
                    continue
                raise ProfileError("cannot integrate a non-zero profile to infinity")
            total += value * (hi - lo)
        return total

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def _combine(self, other: "StepFunction", op) -> "StepFunction":
        times = _merge_breakpoints(self, other)
        values = [op(self.value_at(t), other.value_at(t)) for t in times]
        return StepFunction(times, values)

    def __add__(self, other: "StepFunction") -> "StepFunction":
        return self._combine(other, lambda a, b: a + b)

    def __sub__(self, other: "StepFunction") -> "StepFunction":
        return self._combine(other, lambda a, b: a - b)

    def maximum(self, other: "StepFunction") -> "StepFunction":
        """Pointwise maximum (the paper's view union)."""
        return self._combine(other, max)

    def minimum(self, other: "StepFunction") -> "StepFunction":
        """Pointwise minimum."""
        return self._combine(other, min)

    def scale(self, factor: float) -> "StepFunction":
        """Multiply every value by *factor*."""
        return StepFunction(list(self._times), [v * factor for v in self._values])

    def shift_value(self, delta: float) -> "StepFunction":
        """Add the scalar *delta* to every value."""
        return StepFunction(list(self._times), [v + delta for v in self._values])

    def clip_low(self, floor: float = 0.0) -> "StepFunction":
        """Clamp every value to be at least *floor*."""
        return StepFunction(list(self._times), [max(v, floor) for v in self._values])

    def clip_high(self, ceiling: float) -> "StepFunction":
        """Clamp every value to be at most *ceiling*."""
        return StepFunction(list(self._times), [min(v, ceiling) for v in self._values])

    def add_rectangle(self, start: Time, duration: Time, height: float) -> "StepFunction":
        """Return this profile plus a rectangle (used when placing a request)."""
        if duration <= 0 or height == 0:
            return StepFunction(list(self._times), list(self._values))
        return self + StepFunction.rectangle(start, duration, height)

    def subtract_rectangle(self, start: Time, duration: Time, height: float) -> "StepFunction":
        """Return this profile minus a rectangle (used when consuming capacity)."""
        return self.add_rectangle(start, duration, -height)

    def floor(self) -> "StepFunction":
        """Round every value down to the nearest integer."""
        return StepFunction(list(self._times), [math.floor(v + _EPS) for v in self._values])

    # ------------------------------------------------------------------ #
    # Scheduling primitives
    # ------------------------------------------------------------------ #
    def find_hole(self, n: float, duration: Time, earliest: Time = 0.0) -> Time:
        """Earliest ``t >= earliest`` such that the profile is >= *n* on
        ``[t, t + duration)``.

        This is the paper's ``findHole`` restricted to one cluster.  Returns
        ``math.inf`` if no such time exists (the request "never" starts).
        A zero-node or zero-duration request fits at *earliest* immediately.
        """
        if n <= 0 or duration <= 0:
            return max(0.0, earliest)
        earliest = max(0.0, earliest)
        if math.isinf(duration):
            # Need the profile to stay >= n forever starting at t.
            candidates = [earliest] + [t for t in self._times if t > earliest]
            for t in candidates:
                idx = self._segment_index(t)
                if all(v >= n - _EPS for v in self._values[idx:]):
                    return t
            return math.inf
        candidates = [earliest] + [t for t in self._times if t > earliest]
        for t in candidates:
            if self.min_over(t, t + duration) >= n - _EPS:
                return t
        return math.inf

    def _segment_index(self, t: Time) -> int:
        lo, hi = 0, len(self._times) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._times[mid] <= t:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def alloc_limit(self, start: Time, duration: Time, requested: float) -> float:
        """How many nodes can be granted on ``[start, start+duration)``.

        This is the paper's ``alloc`` on one cluster: the minimum of the
        requested node count and the availability over the window.  Never
        negative.
        """
        if duration <= 0:
            return max(0.0, min(requested, self.value_at(start)))
        available = self.min_over(start, start + duration)
        return max(0.0, min(requested, available))

    # ------------------------------------------------------------------ #
    # Dunder glue
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StepFunction):
            return NotImplemented
        if len(self._times) != len(other._times):
            return False
        return all(
            abs(t1 - t2) < _EPS and abs(v1 - v2) < _EPS
            for t1, t2, v1, v2 in zip(self._times, other._times, self._values, other._values)
        )

    def __hash__(self) -> int:  # pragma: no cover - profiles are not meant to be dict keys
        return hash((tuple(self._times), tuple(self._values)))

    def __repr__(self) -> str:
        parts = ", ".join(f"[{t:g}:{v:g}]" for t, v in zip(self._times, self._values))
        return f"StepFunction({parts})"

    def to_duration_pairs(self, horizon: Time) -> List[Tuple[Time, float]]:
        """Export as the paper's ``[(duration, value), ...]`` form up to *horizon*."""
        pairs: List[Tuple[Time, float]] = []
        for start, end, value in self.segments():
            if start >= horizon:
                break
            pairs.append((min(end, horizon) - start, value))
        return pairs
