"""``python -m repro`` -- centralised subcommand dispatch.

Every command group registers itself here through one uniform interface: a
``(name, add_commands, run_command)`` triple, where ``add_commands`` attaches
the group's sub-parser to the top-level parser and ``run_command`` executes a
parsed invocation.  ``python -m repro --help`` therefore always lists every
group -- adding one is a single entry in :data:`COMMAND_GROUPS`, not an edit
to an ad-hoc dispatch chain.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .campaign.cli import add_campaign_commands, run_campaign_command
from .federation.cli import add_federation_commands, run_federation_command
from .policies.cli import add_policy_commands, run_policy_command
from .traces.cli import add_trace_commands, run_trace_command

__all__ = ["COMMAND_GROUPS", "build_parser", "main"]

#: The registered command groups, in help-listing order.
COMMAND_GROUPS = (
    ("campaign", add_campaign_commands, run_campaign_command),
    ("trace", add_trace_commands, run_trace_command),
    ("policy", add_policy_commands, run_policy_command),
    ("federation", add_federation_commands, run_federation_command),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "CooRMv2 reproduction -- campaign orchestration, workload traces, "
            "scheduling policies and multi-cluster federation."
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for _name, add_commands, _run_command in COMMAND_GROUPS:
        add_commands(commands)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    for name, _add_commands, run_command in COMMAND_GROUPS:
        if args.command == name:
            return run_command(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
