"""Figure 1 -- examples of AMR working-set evolutions.

The figure shows several normalised profiles produced by the
acceleration--deceleration model: 1000 steps, values in [0, 1000], mostly
increasing, with sudden-increase regions, plateaus and noise.  The experiment
regenerates a set of profiles and reports the shape statistics that make them
comparable to the published ones.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..metrics.report import format_table
from ..models.amr_evolution import AmrEvolutionParameters, normalized_profile

__all__ = ["ProfileSummary", "run", "main"]


@dataclass(frozen=True)
class ProfileSummary:
    """Shape statistics of one generated profile."""

    seed: int
    peak: float
    final_value: float
    increasing_fraction: float
    plateau_fraction: float
    max_step_increase: float


def summarize_profile(seed: int, profile: np.ndarray) -> ProfileSummary:
    """Compute the shape statistics reported for Figure 1."""
    diffs = np.diff(profile)
    noise_scale = 3.0  # ~ the model's noise sigma; below this a step is "flat"
    return ProfileSummary(
        seed=seed,
        peak=float(profile.max()),
        final_value=float(profile[-1]),
        increasing_fraction=float(np.mean(diffs > 0)),
        plateau_fraction=float(np.mean(np.abs(diffs) < noise_scale)),
        max_step_increase=float(diffs.max()) if len(diffs) else 0.0,
    )


def run(
    seeds: Sequence[int] = tuple(range(5)),
    params: AmrEvolutionParameters = AmrEvolutionParameters(),
) -> Dict[int, np.ndarray]:
    """Generate one normalised profile per seed (the figure's curves)."""
    return {seed: normalized_profile(seed=seed, params=params) for seed in seeds}


def main(seeds: Sequence[int] = tuple(range(5))) -> str:
    """Render the Figure 1 reproduction as a text table."""
    profiles = run(seeds)
    summaries: List[ProfileSummary] = [
        summarize_profile(seed, profile) for seed, profile in profiles.items()
    ]
    rows = [
        (
            s.seed,
            round(s.peak, 1),
            round(s.final_value, 1),
            f"{100 * s.increasing_fraction:.0f}%",
            f"{100 * s.plateau_fraction:.0f}%",
            round(s.max_step_increase, 1),
        )
        for s in summaries
    ]
    table = format_table(
        ["seed", "peak", "final", "increasing steps", "plateau steps", "max jump"],
        rows,
    )
    return "Figure 1 -- normalised AMR working-set evolutions\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
