"""Reading and writing rigid-job traces in a minimal SWF-like format.

The Parallel Workloads Archive's Standard Workload Format (SWF) describes one
job per line with whitespace-separated fields.  This module supports the four
fields the simulator needs -- job id, submit time, requested node count,
requested runtime -- plus ``#`` comments, so externally produced traces can
be replayed against the RMS and generated workloads can be saved for
reproducibility.  Fields may be separated by spaces or tabs, ``*.gz`` paths
are compressed/decompressed transparently, and every parse error reports the
offending file name and line number.

The *full* 18-field SWF format (header directives, status codes, user ids)
lives in :mod:`repro.traces.swf`; this minimal format remains the exchange
format of the rigid-workload generator.
"""
from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Iterable, List, Tuple, Union

from ..core.textio import read_trace_text, write_text_file
from ..sim.randomness import stable_fingerprint

from ..core.errors import WorkloadError
from .generator import RigidJobSpec

__all__ = ["dump_trace", "load_trace", "dumps_trace", "loads_trace"]


def dumps_trace(jobs: Iterable[RigidJobSpec]) -> str:
    """Serialise jobs to the text format (one ``id submit nodes runtime`` line each)."""
    lines = ["# job_id submit_time node_count duration"]
    for job in jobs:
        lines.append(
            f"{job.job_id} {job.submit_time:.3f} {job.node_count} {job.duration:.3f}"
        )
    return "\n".join(lines) + "\n"


def loads_trace(text: str, source: str = "<string>") -> List[RigidJobSpec]:
    """Parse the text format produced by :func:`dumps_trace`.

    *source* names the origin of the text (usually a file path) and prefixes
    every :class:`WorkloadError` as ``source:line``, so a bad line deep in a
    large trace is immediately locatable.
    """
    jobs: List[RigidJobSpec] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        where = f"{source}:{lineno}"
        if not line or line.startswith("#") or line.startswith(";"):
            continue
        parts = line.split()  # any run of spaces and/or tabs separates fields
        if len(parts) != 4:
            raise WorkloadError(f"{where}: expected 4 fields, got {len(parts)}")
        job_id, submit_s, nodes_s, duration_s = parts
        try:
            submit = float(submit_s)
            nodes = int(nodes_s)
            duration = float(duration_s)
        except ValueError as exc:
            raise WorkloadError(f"{where}: {exc}") from exc
        if submit < 0 or nodes <= 0 or duration <= 0:
            raise WorkloadError(f"{where}: fields out of range")
        jobs.append(
            RigidJobSpec(
                job_id=job_id, submit_time=submit, node_count=nodes, duration=duration
            )
        )
    jobs.sort(key=lambda j: j.submit_time)
    return jobs


def dump_trace(jobs: Iterable[RigidJobSpec], path: Union[str, Path]) -> None:
    """Write a trace file (gzip-compressed when the path ends in ``.gz``)."""
    write_text_file(Path(path), dumps_trace(jobs))


def load_trace(path: Union[str, Path]) -> List[RigidJobSpec]:
    """Read a trace file (transparently gunzipping ``*.gz`` paths)."""
    return loads_trace(read_trace_text(path), source=str(path))


@lru_cache(maxsize=8)
def load_trace_cached(path: str) -> Tuple[Tuple[RigidJobSpec, ...], str]:
    """Parse and fingerprint a trace file once per process.

    Returns ``(jobs, sha256_16)``.  Replay loops (one campaign run per
    seed over the same file) use this to avoid re-reading a file whose
    content is seed-independent; the fingerprint names the content for
    provenance records.  The job tuple is shared -- callers must not
    mutate the specs -- and a file edited in place during the process's
    lifetime is not re-read.
    """
    text = read_trace_text(Path(path))
    return tuple(loads_trace(text, source=path)), stable_fingerprint(text)
