"""Declarative service-level objectives evaluated over traced runs.

An :class:`SLOSpec` is a named bundle of objectives -- queue-wait ceilings,
bounded-slowdown bounds, SLA attainment percentages, utilization floors --
declared as plain data and JSON round-trippable, so specs live in files next
to campaign configs rather than in code.  :func:`evaluate_slo` measures each
objective against the :class:`~repro.obs.lifecycle.JobAudit` list (and, for
utilization, the :class:`~repro.obs.timeline.Timeline`) of one run and
returns a report whose flat form slots straight into campaign records, where
the existing median machinery aggregates it across replicates.

Objective kinds:

``p95_wait``
    95th-percentile queue wait must not exceed ``max_seconds``.
``mean_bounded_slowdown``
    Mean bounded slowdown (tau = 10 s) must not exceed ``max``.
``attainment``
    At least ``min_percent`` % of started jobs must have waited no longer
    than ``wait_seconds`` (the classic SLA-attainment objective).
``utilization``
    Mean cluster utilization must be at least ``min_percent`` % (requires a
    timeline; the objective is skipped -- not failed -- without one).
``time_to_recover``
    The longest contiguous span with at least one federation member down
    (the timeline's ``fault.down`` series) must not exceed ``max_seconds``
    (requires a fault-traced timeline; skipped without one).
"""
from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .lifecycle import JobAudit, percentile
from .timeline import Timeline

__all__ = ["SLOSpec", "SLOReport", "evaluate_slo", "DEFAULT_SLO"]

#: Objective kinds and the parameter each one requires.
OBJECTIVE_KINDS = {
    "p95_wait": ("max_seconds",),
    "mean_bounded_slowdown": ("max",),
    "attainment": ("wait_seconds", "min_percent"),
    "utilization": ("min_percent",),
    "time_to_recover": ("max_seconds",),
}


@dataclass(frozen=True)
class SLOSpec:
    """A named, declarative set of objectives (immutable, JSON-round-trip)."""

    name: str
    objectives: Tuple[Mapping[str, object], ...]

    def __post_init__(self) -> None:
        if not self.objectives:
            raise ValueError(f"SLO spec {self.name!r} declares no objectives")
        for obj in self.objectives:
            kind = obj.get("kind")
            if kind not in OBJECTIVE_KINDS:
                raise ValueError(
                    f"SLO spec {self.name!r}: unknown objective kind {kind!r}; "
                    f"known: {sorted(OBJECTIVE_KINDS)}"
                )
            missing = [p for p in OBJECTIVE_KINDS[kind] if p not in obj]
            if missing:
                raise ValueError(
                    f"SLO spec {self.name!r}: objective {kind!r} missing "
                    f"parameters {missing}"
                )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "objectives": [dict(obj) for obj in self.objectives],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SLOSpec":
        objectives = data.get("objectives")
        if not isinstance(objectives, list):
            raise ValueError("SLO spec requires an 'objectives' list")
        return cls(
            name=str(data.get("name", "unnamed")),
            objectives=tuple(dict(obj) for obj in objectives),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, allow_nan=False)

    @classmethod
    def from_json(cls, text: str) -> "SLOSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid SLO spec JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError("SLO spec must be a JSON object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "SLOSpec":
        """Read a spec from a JSON file (``--slo`` takes a path or a name)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_json(fh.read())


#: A deliberately loose baseline spec: the reference fig9 workload passes it
#: comfortably, so it works as a smoke-level regression tripwire out of the
#: box while serving as a template for stricter, scenario-specific specs.
DEFAULT_SLO = SLOSpec(
    name="default",
    objectives=(
        {"kind": "p95_wait", "max_seconds": 3600.0},
        {"kind": "mean_bounded_slowdown", "max": 10.0},
        {"kind": "attainment", "wait_seconds": 3600.0, "min_percent": 90.0},
    ),
)


@dataclass
class SLOReport:
    """Outcome of evaluating one spec against one run."""

    spec_name: str
    #: One entry per objective: kind, threshold params, measured, ok/skipped.
    results: List[Dict[str, object]]

    @property
    def evaluated(self) -> List[Dict[str, object]]:
        return [r for r in self.results if not r.get("skipped")]

    @property
    def violations(self) -> int:
        return sum(1 for r in self.evaluated if not r["ok"])

    @property
    def passed(self) -> bool:
        return self.violations == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec_name,
            "passed": self.passed,
            "violations": self.violations,
            "results": list(self.results),
        }

    def to_flat(self) -> Dict[str, float]:
        """Flat numeric view for campaign records (median-aggregatable)."""
        flat: Dict[str, float] = {
            "slo.passed": 1.0 if self.passed else 0.0,
            "slo.violations": float(self.violations),
        }
        for r in self.results:
            if not r.get("skipped"):
                flat[f"slo.{r['kind']}"] = float(r["measured"])
        return flat


def _measure(
    kind: str,
    obj: Mapping[str, object],
    audits: List[JobAudit],
    timeline: Optional[Timeline],
) -> Tuple[Optional[float], Optional[bool]]:
    """(measured value, ok) of one objective; (None, None) when skipped."""
    waits = [a.queue_wait for a in audits if a.queue_wait is not None]
    if kind == "p95_wait":
        measured = percentile(waits, 95.0)
        return measured, measured <= float(obj["max_seconds"])
    if kind == "mean_bounded_slowdown":
        slowdowns = [
            a.bounded_slowdown for a in audits if a.bounded_slowdown is not None
        ]
        measured = sum(slowdowns) / len(slowdowns) if slowdowns else 1.0
        return measured, measured <= float(obj["max"])
    if kind == "attainment":
        if not waits:
            return 100.0, 100.0 >= float(obj["min_percent"])
        ceiling = float(obj["wait_seconds"])
        attained = sum(1 for w in waits if w <= ceiling)
        measured = 100.0 * attained / len(waits)
        return measured, measured >= float(obj["min_percent"])
    if kind == "utilization":
        if timeline is None or "util.pct" not in timeline.series:
            return None, None
        measured = timeline.stats("util.pct")["mean"]
        return measured, measured >= float(obj["min_percent"])
    if kind == "time_to_recover":
        if timeline is None or "fault.down" not in timeline.series:
            return None, None
        # Longest contiguous grid span with any member down.  The series
        # is piecewise-constant over the grid, so summing the intervals
        # whose left point is down measures the outage span to within one
        # grid step -- deterministic and good enough for an objective.
        times = timeline.times()
        values = timeline.series["fault.down"]
        longest = current = 0.0
        for i in range(len(values) - 1):
            if values[i] > 0:
                current += times[i + 1] - times[i]
                longest = max(longest, current)
            else:
                current = 0.0
        return longest, longest <= float(obj["max_seconds"])
    raise ValueError(f"unknown objective kind {kind!r}")


def evaluate_slo(
    spec: SLOSpec,
    audits: List[JobAudit],
    timeline: Optional[Timeline] = None,
) -> SLOReport:
    """Evaluate every objective of *spec* against one run's audits.

    Objectives that cannot be measured with the inputs given (currently only
    ``utilization`` without a timeline) are marked ``skipped`` rather than
    failed, so one spec works across commands that do and do not build
    timelines.
    """
    results: List[Dict[str, object]] = []
    for obj in spec.objectives:
        kind = str(obj["kind"])
        measured, ok = _measure(kind, obj, audits, timeline)
        entry: Dict[str, object] = {
            "kind": kind,
            **{p: obj[p] for p in OBJECTIVE_KINDS[kind]},
        }
        if measured is None:
            entry["skipped"] = True
        else:
            entry["measured"] = round(measured, 6)
            entry["ok"] = bool(ok)
        results.append(entry)
    return SLOReport(spec_name=spec.name, results=results)
