"""Benchmark and reproduction of Figure 2 (AMR speed-up model curves)."""
from __future__ import annotations

from repro.experiments import fig2_speedup_fit


def test_fig2_speedup_curves(benchmark):
    """Time the evaluation of every Figure 2 curve."""
    curves = benchmark(fig2_speedup_fit.run)
    assert set(curves) == set(fig2_speedup_fit.PAPER_MESH_SIZES_GIB)
    print()
    print(fig2_speedup_fit.main(node_counts=(1, 4, 16, 64, 256, 1024, 4096, 16384)))
