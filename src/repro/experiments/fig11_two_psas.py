"""Figure 11 -- efficient resource filling with two PSAs.

A second PSA with much shorter tasks (60 s instead of 600 s) is added to the
announced-update scenario.  Under CooRMv2's equi-partitioning *with filling*,
resources that PSA1 cannot exploit (holes shorter than its task duration) are
offered to PSA2, which can fill them; under *strict* equi-partitioning both
PSAs are always shown the same equal slice and the holes stay idle.  The
figure reports the percent of used resources for both policies against the
announce interval.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..metrics.report import format_table
from .runner import EvaluationScale, build_evolution, run_scenario

__all__ = ["PAPER_ANNOUNCE_INTERVALS", "Fig11Point", "run", "main"]

#: The x-axis of Figure 11 (seconds), as in Figure 10.
PAPER_ANNOUNCE_INTERVALS: Tuple[float, ...] = (0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0)


@dataclass(frozen=True)
class Fig11Point:
    """One x-position of Figure 11."""

    announce_interval: float
    used_resources_filling_percent: float
    used_resources_strict_percent: float

    @property
    def filling_gain_percent(self) -> float:
        return self.used_resources_filling_percent - self.used_resources_strict_percent


def run(
    announce_intervals: Sequence[float] = PAPER_ANNOUNCE_INTERVALS,
    scale: Optional[EvaluationScale] = None,
    seed: int = 0,
    overcommit: float = 1.0,
) -> List[Fig11Point]:
    """Run the Figure 11 sweep: filling vs strict equi-partitioning."""
    if scale is None:
        scale = EvaluationScale.reduced()
    evolution = build_evolution(scale, seed=seed)
    task_durations = (scale.psa1_task_duration, scale.psa2_task_duration)

    points: List[Fig11Point] = []
    for interval in announce_intervals:
        filling = run_scenario(
            scale,
            seed=seed,
            overcommit=overcommit,
            announce_interval=interval,
            psa_task_durations=task_durations,
            strict_equipartition=False,
            evolution=evolution,
        )
        strict = run_scenario(
            scale,
            seed=seed,
            overcommit=overcommit,
            announce_interval=interval,
            psa_task_durations=task_durations,
            strict_equipartition=True,
            evolution=evolution,
        )
        points.append(
            Fig11Point(
                announce_interval=interval,
                used_resources_filling_percent=filling.metrics.used_resources_percent,
                used_resources_strict_percent=strict.metrics.used_resources_percent,
            )
        )
    return points


def main(
    announce_intervals: Sequence[float] = PAPER_ANNOUNCE_INTERVALS,
    scale: Optional[EvaluationScale] = None,
    seed: int = 0,
) -> str:
    """Render the Figure 11 reproduction as a text table."""
    points = run(announce_intervals, scale=scale, seed=seed)
    rows = [
        (
            p.announce_interval,
            f"{p.used_resources_filling_percent:.1f}%",
            f"{p.used_resources_strict_percent:.1f}%",
            f"{p.filling_gain_percent:+.1f}%",
        )
        for p in points
    ]
    table = format_table(
        ["announce interval (s)", "equi-partitioning (filling)", "strict equi-partitioning", "gain"],
        rows,
    )
    return "Figure 11 -- two PSAs: used resources, filling vs strict\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
