"""Built-in scenario runners: the paper's figures plus mixed workloads.

Each figure of the evaluation (`repro.experiments.fig*`) is ported here as a
registered scenario runner so the whole paper evaluation can run as one
parallel campaign (``python -m repro campaign run --scenarios paper``-style
sweeps).  Runners return **flat** ``{metric: number}`` mappings -- figure
sweeps are flattened with one key per (x-position, series) pair -- because
flat records make medians across seeds and cross-campaign comparisons
trivial.

Two generic runners complement the figures:

``amr_psa`` is the generic runner: it executes whatever the scenario's
platform/workload/RMS sections describe (the paper scenario with every knob
exposed, including rigid batch-job streams layered on top -- see the
built-in ``mixed-rigid`` scenario).
"""
from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from ..experiments import (
    fig1_amr_profiles,
    fig2_speedup_fit,
    fig3_static_endtime,
    fig4_static_choices,
    fig9_spontaneous,
    fig10_announced,
    fig11_two_psas,
)
from ..experiments.runner import run_scenario
from ..federation.metrics import federation_breakdown
from ..federation.spec import get_topology
from ..models.amr_evolution import AmrEvolutionParameters, normalized_profile
from ..sim.randomness import derive_seed
from ..traces.source import resolve_converted_jobs
from ..workloads.generator import WorkloadParameters, generate_rigid_workload
from ..workloads.trace import load_trace_cached
from .registry import record_provenance, register_runner, register_scenario
from .spec import PlatformSpec, RmsSpec, ScenarioSpec, WorkloadSpec, resolve_scale

__all__ = ["clean_metrics", "POLICY_AWARE_RUNNERS"]

#: Runners that honour ``ScenarioSpec.policy``.  The figure runners
#: reproduce fixed paper experiments and reject policy sweeps
#: (see :func:`_require_default_policy`).
POLICY_AWARE_RUNNERS = frozenset({"amr_psa"})

#: Announce intervals of Figures 10/11 expressed relative to the PSA1 task
#: duration (the paper sweeps 0..700 s against 600-second tasks), so the
#: sweep keeps its shape at every scale.
RELATIVE_ANNOUNCE_INTERVALS: Tuple[float, ...] = tuple(
    i / 600.0 for i in fig10_announced.PAPER_ANNOUNCE_INTERVALS
)


def clean_metrics(metrics: Dict[str, object]) -> Dict[str, object]:
    """Map non-finite numbers to ``None`` so records are strict JSON."""
    cleaned: Dict[str, object] = {}
    for key, value in metrics.items():
        if isinstance(value, float) and not math.isfinite(value):
            value = None
        cleaned[key] = value
    return cleaned


def _apply_metrics_filter(spec: ScenarioSpec, metrics: Dict[str, object]) -> Dict[str, object]:
    if not spec.metrics:
        return metrics
    return {k: v for k, v in metrics.items() if k in spec.metrics}


def _require_default_policy(spec: ScenarioSpec) -> None:
    """Fail loudly when a policy-agnostic runner is asked to sweep policies.

    The figure runners reproduce fixed paper experiments (fig11 even embeds
    its own strict-vs-filling comparison); silently running the default
    algorithm while the record claims another policy would fabricate a
    policy comparison out of identical runs.  Only the generic ``amr_psa``
    runner honours ``ScenarioSpec.policy`` -- and, for the same reason,
    ``ScenarioSpec.federation``.
    """
    if spec.policy is not None and spec.policy_name != "coorm":
        raise ValueError(
            f"scenario {spec.name!r} (runner {spec.runner!r}) reproduces a fixed "
            f"paper experiment and ignores scheduling policies; it cannot run "
            f"under policy {spec.policy_name!r}. Sweep policies over 'amr_psa'-"
            f"based scenarios (e.g. trace-replay, baseline-dynamic) instead."
        )
    if spec.federation is not None:
        raise ValueError(
            f"scenario {spec.name!r} (runner {spec.runner!r}) reproduces a fixed "
            f"paper experiment on a single cluster and ignores federation "
            f"specs; federate 'amr_psa'-based scenarios (e.g. fed-dual-trace) "
            f"instead."
        )
    if spec.faults is not None:
        raise ValueError(
            f"scenario {spec.name!r} (runner {spec.runner!r}) reproduces a fixed "
            f"paper experiment and ignores fault plans; inject faults into "
            f"'amr_psa'-based federated scenarios (e.g. fed-chaos-dual) instead."
        )


def _finish(spec: ScenarioSpec, metrics: Dict[str, object]) -> Dict[str, object]:
    return _apply_metrics_filter(spec, clean_metrics(metrics))


def _background_workload(spec: ScenarioSpec, seed: int):
    """The background job streams of a scenario: ``(rigid, adaptive)``.

    A declarative trace source produces converted (possibly adaptive) jobs;
    a bare ``trace_path`` replays the file as plain rigid jobs; otherwise
    the synthetic rigid generator runs.  Whichever branch fires records its
    workload provenance for the campaign runner to persist.
    """
    workload = spec.workload
    if workload.trace is not None:
        max_nodes = spec.platform.cluster_nodes or None
        jobs, provenance = resolve_converted_jobs(
            workload.trace, seed=seed, max_nodes=max_nodes
        )
        record_provenance(provenance)
        return None, jobs
    if workload.trace_path:
        jobs, fingerprint = load_trace_cached(workload.trace_path)
        # Fingerprint the content, not just the name: a renamed or
        # silently-edited replay file stays distinguishable in the store.
        record_provenance(
            {"source": {"path": workload.trace_path, "sha256_16": fingerprint}}
        )
        return jobs, None
    if workload.rigid_job_count <= 0:
        return None, None
    median = workload.rigid_runtime_median
    params = WorkloadParameters(
        job_count=workload.rigid_job_count,
        max_nodes=workload.rigid_max_nodes,
        mean_interarrival=workload.rigid_mean_interarrival,
        runtime_log_mean=math.log(median),
        runtime_log_sigma=0.6,
        min_runtime=min(60.0, median),
        max_runtime=10.0 * median,
    )
    record_provenance(
        {"source": {"generator": params.to_dict()}, "seed_component": "rigid-workload"}
    )
    # The stream's seed is derived, not reused, so the rigid jobs do not
    # correlate with the AMR evolution drawn from the same run seed.
    return (
        generate_rigid_workload(params, seed=derive_seed(seed, "rigid-workload")),
        None,
    )


# --------------------------------------------------------------------- #
# Generic runners
# --------------------------------------------------------------------- #
@register_runner("amr_psa")
def run_amr_psa(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """The paper scenario with every spec knob honoured."""
    scale = resolve_scale(spec)
    workload = spec.workload
    # An empty duration list means "the scale's default PSA1" for the paper
    # scenario, but "no PSAs at all" once the AMR is dropped -- otherwise a
    # rigid-only workload could never be expressed declaratively.
    durations: Optional[Sequence[float]]
    if workload.psa_task_durations:
        durations = workload.psa_task_durations
    else:
        durations = None if workload.include_amr else ()
    rigid_jobs, adaptive_jobs = _background_workload(spec, seed)
    result = run_scenario(
        scale,
        seed=seed,
        overcommit=workload.overcommit,
        announce_interval=workload.announce_interval,
        static_allocation=workload.static_allocation,
        psa_task_durations=durations,
        strict_equipartition=spec.rms.strict_equipartition,
        include_amr=workload.include_amr,
        rigid_jobs=rigid_jobs,
        adaptive_jobs=adaptive_jobs,
        cluster_nodes=spec.platform.cluster_nodes or None,
        kill_protocol_violators=spec.rms.kill_protocol_violators,
        violation_grace=spec.rms.violation_grace,
        policy=spec.policy,
        federation=spec.federation,
        faults=spec.faults,
    )
    metrics = result.metrics.to_dict()
    metrics["cluster_nodes"] = result.cluster_nodes
    metrics["ideal_preallocation"] = result.ideal_preallocation
    if result.rigid_apps:
        metrics["rigid_jobs"] = len(result.rigid_apps)
        metrics["rigid_finished"] = sum(1 for a in result.rigid_apps if a.finished())
    if result.trace_apps:
        metrics["trace_jobs"] = len(result.trace_apps)
        metrics["trace_finished"] = sum(1 for a in result.trace_apps if a.finished())
    if result.federation is not None:
        metrics.update(
            federation_breakdown(result.federation, result.metrics, amr=result.amr)
        )
    if result.fault_injector is not None:
        metrics.update(result.fault_injector.summary())
    return _finish(spec, metrics)


# --------------------------------------------------------------------- #
# Figure runners (ports of repro.experiments.fig*)
# --------------------------------------------------------------------- #
@register_runner("fig1")
def run_fig1(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Shape statistics of one normalised AMR working-set profile."""
    _require_default_policy(spec)
    num_steps = int(spec.params.get("num_steps", resolve_scale(spec).num_steps))
    params = (
        AmrEvolutionParameters(num_steps=num_steps)
        if num_steps == 1000
        else AmrEvolutionParameters.scaled(num_steps)
    )
    profile = normalized_profile(seed=seed, params=params)
    summary = fig1_amr_profiles.summarize_profile(seed, profile)
    return _finish(
        spec,
        {
            "peak": summary.peak,
            "final_value": summary.final_value,
            "increasing_fraction": summary.increasing_fraction,
            "plateau_fraction": summary.plateau_fraction,
            "max_step_increase": summary.max_step_increase,
        },
    )


@register_runner("fig2")
def run_fig2(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Model step durations per (mesh size, node count); seed-independent."""
    _require_default_policy(spec)
    curves = fig2_speedup_fit.run()
    metrics: Dict[str, object] = {}
    for size_gib, curve in curves.items():
        for nodes, duration in zip(curve.node_counts, curve.durations):
            metrics[f"duration_s[{size_gib:g}GiB,n={nodes}]"] = duration
    return _finish(spec, metrics)


@register_runner("fig3")
def run_fig3(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """End-time increase of the equivalent static allocation (one seed)."""
    _require_default_policy(spec)
    scale = resolve_scale(spec)
    num_steps = int(spec.params.get("num_steps", scale.num_steps))
    points = fig3_static_endtime.run(
        seeds=(seed,), num_steps=num_steps, s_max_mib=scale.s_max_mib
    )
    metrics: Dict[str, object] = {}
    for target, point in points.items():
        metrics[f"end_time_increase[eff={target:g}]"] = point.median_increase
        metrics[f"feasible[eff={target:g}]"] = point.feasible_fraction
    return _finish(spec, metrics)


@register_runner("fig4")
def run_fig4(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Static-choice node-count ranges per relative peak size (one seed)."""
    _require_default_policy(spec)
    scale = resolve_scale(spec)
    num_steps = int(spec.params.get("num_steps", scale.num_steps))
    rows = fig4_static_choices.run(seed=seed, num_steps=num_steps)
    metrics: Dict[str, object] = {}
    for relative, row in rows.items():
        metrics[f"min_nodes[rel={relative:g}]"] = row.min_nodes
        metrics[f"max_nodes[rel={relative:g}]"] = row.max_nodes
    return _finish(spec, metrics)


def _overcommit_factors(spec: ScenarioSpec) -> Tuple[float, ...]:
    factors = spec.params.get("overcommit_factors")
    if factors is None:
        return fig9_spontaneous.PAPER_OVERCOMMIT_FACTORS
    return tuple(float(f) for f in factors)


@register_runner("fig9")
def run_fig9(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Static-vs-dynamic overcommit sweep with spontaneous updates."""
    _require_default_policy(spec)
    scale = resolve_scale(spec)
    points = fig9_spontaneous.run(_overcommit_factors(spec), scale=scale, seed=seed)
    metrics: Dict[str, object] = {}
    for p in points:
        prefix = f"oc={p.overcommit:g}"
        metrics[f"amr_used_static[{prefix}]"] = p.static_amr_used_node_seconds
        metrics[f"amr_used_dynamic[{prefix}]"] = p.dynamic_amr_used_node_seconds
        metrics[f"psa_waste_dynamic[{prefix}]"] = p.dynamic_psa_waste_node_seconds
        metrics[f"end_time_static[{prefix}]"] = p.static_end_time
        metrics[f"end_time_dynamic[{prefix}]"] = p.dynamic_end_time
    return _finish(spec, metrics)


def _announce_intervals(spec: ScenarioSpec, psa1_task_duration: float) -> Tuple[float, ...]:
    intervals = spec.params.get("announce_intervals")
    if intervals is not None:
        return tuple(float(i) for i in intervals)
    # Scale the paper's 0..700 s x-axis with the PSA task duration so the
    # "interval reaches the task duration" transition survives at tiny scale.
    return tuple(r * psa1_task_duration for r in RELATIVE_ANNOUNCE_INTERVALS)


@register_runner("fig10")
def run_fig10(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Announce-interval sweep: end-time increase, waste, used resources."""
    _require_default_policy(spec)
    scale = resolve_scale(spec)
    intervals = _announce_intervals(spec, scale.psa1_task_duration)
    points = fig10_announced.run(intervals, scale=scale, seed=seed)
    metrics: Dict[str, object] = {}
    for p in points:
        prefix = f"announce={p.announce_interval:g}"
        metrics[f"end_time_increase_pct[{prefix}]"] = p.amr_end_time_increase_percent
        metrics[f"psa_waste_pct[{prefix}]"] = p.psa_waste_percent
        metrics[f"used_resources_pct[{prefix}]"] = p.used_resources_percent
    return _finish(spec, metrics)


@register_runner("fig11")
def run_fig11(spec: ScenarioSpec, seed: int) -> Dict[str, object]:
    """Two-PSA filling-vs-strict equi-partitioning sweep."""
    _require_default_policy(spec)
    scale = resolve_scale(spec)
    intervals = _announce_intervals(spec, scale.psa1_task_duration)
    points = fig11_two_psas.run(intervals, scale=scale, seed=seed)
    metrics: Dict[str, object] = {}
    for p in points:
        prefix = f"announce={p.announce_interval:g}"
        metrics[f"used_filling_pct[{prefix}]"] = p.used_resources_filling_percent
        metrics[f"used_strict_pct[{prefix}]"] = p.used_resources_strict_percent
        metrics[f"filling_gain_pct[{prefix}]"] = p.filling_gain_percent
    return _finish(spec, metrics)


# --------------------------------------------------------------------- #
# Built-in scenario definitions
# --------------------------------------------------------------------- #
for _name, _runner, _description in [
    ("fig1", "fig1", "Normalised AMR working-set evolution shape statistics"),
    ("fig2", "fig2", "AMR step-duration model curves (speed-up fit)"),
    ("fig3", "fig3", "End-time increase of the equivalent static allocation"),
    ("fig4", "fig4", "Feasible static node-count choices per relative peak size"),
    ("fig9", "fig9", "Spontaneous updates: static vs dynamic overcommit sweep"),
    ("fig10", "fig10", "Announced updates: end-time increase, waste, used resources"),
    ("fig11", "fig11", "Two PSAs: equi-partitioning with filling vs strict"),
]:
    register_scenario(
        ScenarioSpec(name=_name, runner=_runner, description=_description)
    )

# Descriptive alias: the fig9 experiment is the paper's *spontaneous
# update* evaluation, and tooling examples refer to it by that name.
register_scenario(
    ScenarioSpec(
        name="fig9-spontaneous",
        runner="fig9",
        description="Alias of fig9 (spontaneous updates overcommit sweep)",
    )
)

register_scenario(
    ScenarioSpec(
        name="baseline-dynamic",
        runner="amr_psa",
        description="One AMR + one PSA, dynamic allocation (paper default)",
    )
)
register_scenario(
    ScenarioSpec(
        name="baseline-static",
        runner="amr_psa",
        description="One AMR + one PSA, AMR pinned to its whole pre-allocation",
        workload=WorkloadSpec(static_allocation=True),
    )
)
register_scenario(
    ScenarioSpec(
        name="strict-equipartition",
        runner="amr_psa",
        description="Paper scenario under the strict equi-partitioning baseline",
        rms=RmsSpec(strict_equipartition=True),
    )
)
register_scenario(
    ScenarioSpec(
        name="mixed-rigid",
        runner="amr_psa",
        description="AMR + PSA + a background stream of rigid batch jobs",
        workload=WorkloadSpec(
            rigid_job_count=8,
            rigid_max_nodes=16,
            rigid_mean_interarrival=30.0,
            rigid_runtime_median=120.0,
        ),
    )
)

#: Statistical model behind the built-in trace scenarios: Poisson arrivals
#: every 30 s, ~2-minute median runtimes, power-of-two jobs up to 32 nodes.
TRACE_SCENARIO_MODEL: Dict[str, Dict] = {
    "arrivals": {"kind": "poisson", "rate": 1.0 / 30.0},
    "durations": {
        "kind": "log_normal_duration",
        "log_mean": math.log(120.0),
        "log_sigma": 0.6,
        "min_seconds": 10.0,
        "max_seconds": 1200.0,
    },
    "nodes": {
        "kind": "log_uniform_nodes",
        "min_nodes": 1,
        "max_nodes": 32,
        "power_of_two": True,
    },
}

register_scenario(
    ScenarioSpec(
        name="trace-replay",
        runner="amr_psa",
        description="Pure rigid replay of a 200-job model-synthesized trace",
        platform=PlatformSpec(cluster_nodes=64),
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "model": TRACE_SCENARIO_MODEL,
                "job_count": 200,
                "transforms": [{"kind": "clamp_nodes", "max_nodes": 64}],
            },
        ),
    )
)
register_scenario(
    ScenarioSpec(
        name="trace-adaptive",
        runner="amr_psa",
        description="Model-synthesized trace converted to an adaptive app mix",
        platform=PlatformSpec(cluster_nodes=64),
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "model": TRACE_SCENARIO_MODEL,
                "job_count": 60,
                "transforms": [{"kind": "clamp_nodes", "max_nodes": 64}],
                "mix": {
                    "rigid": 0.4,
                    "moldable": 0.2,
                    "malleable": 0.2,
                    "evolving": 0.2,
                },
            },
        ),
    )
)

# --------------------------------------------------------------------- #
# Federated scenarios: the registered built-in topologies (see
# repro.federation.spec) applied to the generic runner, so `federation
# describe <topology>` always matches what these scenarios execute.
# --------------------------------------------------------------------- #
register_scenario(
    ScenarioSpec(
        name="fed-single",
        runner="amr_psa",
        description="Paper scenario inside a 1-cluster federation; must be "
        "byte-identical to baseline-dynamic (equivalence guard)",
        federation=get_topology("single"),
    )
)
register_scenario(
    ScenarioSpec(
        name="fed-dual-trace",
        runner="amr_psa",
        description="200-job synthesized trace fanned into two 32-node "
        "clusters by the meta-scheduler",
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "model": TRACE_SCENARIO_MODEL,
                "job_count": 200,
                "transforms": [{"kind": "clamp_nodes", "max_nodes": 32}],
            },
        ),
        federation=get_topology("dual"),
    )
)
# --------------------------------------------------------------------- #
# Chaos scenarios: the dual topology under the built-in fault plans.
# AMR-free on purpose -- the trace workload's rigid jobs are killable and
# respawnable, so jobs-lost / rescheduled / SLA-attainment numbers are
# well defined.  120 jobs at one arrival per ~30 s spans the plans'
# 600..2400 s fault windows comfortably.
# --------------------------------------------------------------------- #
_CHAOS_TRACE: Dict[str, object] = {
    "model": TRACE_SCENARIO_MODEL,
    "job_count": 120,
    "transforms": [{"kind": "clamp_nodes", "max_nodes": 32}],
}

register_scenario(
    ScenarioSpec(
        name="fed-chaos-dual",
        runner="amr_psa",
        description="Synthesized trace on two clusters under the flaky-nodes "
        "plan: staggered partial crashes with restarts, admission control "
        "rerouting around the unhealthy member",
        workload=WorkloadSpec(include_amr=False, trace=_CHAOS_TRACE),
        federation=get_topology("dual"),
        faults="flaky-nodes",
    )
)
register_scenario(
    ScenarioSpec(
        name="fed-chaos-blackout",
        runner="amr_psa",
        description="Synthesized trace on two clusters with one member "
        "blacked out for 25 sim-minutes; killed jobs respawn on the survivor",
        workload=WorkloadSpec(include_amr=False, trace=_CHAOS_TRACE),
        federation=get_topology("dual"),
        faults="blackout",
    )
)

register_scenario(
    ScenarioSpec(
        name="fed-hetero3",
        runner="amr_psa",
        description="Adaptive trace mix over three heterogeneous clusters "
        "(16/32/64 nodes) under least-loaded routing",
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "model": TRACE_SCENARIO_MODEL,
                "job_count": 60,
                "transforms": [{"kind": "clamp_nodes", "max_nodes": 64}],
                "mix": {
                    "rigid": 0.4,
                    "moldable": 0.2,
                    "malleable": 0.2,
                    "evolving": 0.2,
                },
            },
        ),
        federation=get_topology("hetero3"),
    )
)
