"""Unit tests of the Parameter-Sweep Application (Section 5.1.2)."""
from __future__ import annotations


import numpy as np
import pytest

from repro.apps import AmrApplication, ParameterSweepApplication, RigidApplication
from repro.cluster import Platform
from repro.core import CooRMv2
from repro.models import WorkingSetEvolution
from repro.sim import Simulator


def make_env(nodes=16, strict=False):
    sim = Simulator()
    platform = Platform.single_cluster(nodes)
    rms = CooRMv2(platform, sim, rescheduling_interval=1.0, strict_equipartition=strict)
    return sim, platform, rms


class TestBasics:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ParameterSweepApplication("p", task_duration=0.0)

    def test_fills_an_empty_cluster_and_completes_tasks(self):
        sim, _, rms = make_env(nodes=8)
        psa = ParameterSweepApplication("psa", task_duration=30.0)
        psa.connect(rms)
        sim.run(until=200.0)
        assert psa.busy_count() == 8
        assert psa.stats.completed_tasks >= 8 * 5
        assert psa.stats.killed_tasks == 0
        assert psa.stats.waste_node_seconds == 0.0
        assert psa.stats.total_busy_node_seconds == pytest.approx(
            psa.stats.completed_node_seconds
        )

    def test_shutdown_finishes_running_tasks_without_waste(self):
        sim, platform, rms = make_env(nodes=8)
        psa = ParameterSweepApplication("psa", task_duration=30.0)
        psa.connect(rms)
        sim.run(until=100.0)
        completed_before = psa.stats.completed_tasks
        psa.shutdown()
        sim.run()
        assert psa.finished()
        assert psa.stats.waste_node_seconds == 0.0
        assert psa.stats.completed_tasks >= completed_before
        assert platform.cluster("cluster0").free_count() == 8

    def test_shutdown_now_aborts_without_counting_waste(self):
        sim, platform, rms = make_env(nodes=8)
        psa = ParameterSweepApplication("psa", task_duration=1000.0)
        psa.connect(rms)
        sim.run(until=50.0)
        assert psa.busy_count() == 8
        psa.shutdown_now()
        sim.run()
        assert psa.finished()
        assert psa.stats.waste_node_seconds == 0.0
        assert psa.stats.killed_tasks == 0
        assert platform.cluster("cluster0").free_count() == 8


class TestPreemption:
    def test_sudden_demand_kills_tasks_and_counts_waste(self):
        sim, _, rms = make_env(nodes=16)
        psa = ParameterSweepApplication("psa", task_duration=600.0)
        psa.connect(rms)
        sim.run(until=100.0)
        assert psa.busy_count() == 16
        # A rigid job needs 8 nodes right now: the PSA must kill tasks.
        rigid = RigidApplication("rigid", node_count=8, duration=100.0)
        rigid.connect(rms)
        sim.run(until=200.0)
        assert rigid.request.started()
        assert psa.stats.killed_tasks >= 8
        assert psa.stats.waste_node_seconds > 0
        assert psa.busy_count() <= 8

    def test_future_drop_is_absorbed_without_waste(self):
        sim, _, rms = make_env(nodes=16)
        psa = ParameterSweepApplication("psa", task_duration=50.0)
        psa.connect(rms)
        sim.run(until=60.0)
        # An evolving application declares (via a fully-predictable chain)
        # that it will need 8 nodes in 100 seconds -- more than one PSA task
        # duration away, so the PSA can drain gracefully.
        from repro.apps import EvolutionPhase, FullyPredictableEvolvingApplication

        evolving = FullyPredictableEvolvingApplication(
            "evolving",
            phases=[EvolutionPhase(1, 100.0), EvolutionPhase(8, 200.0)],
        )
        evolving.connect(rms)
        sim.run(until=500.0)
        assert evolving.requests[1].started()
        # The immediate 1-node demand of the first phase may kill one task,
        # but the announced growth to 8 nodes is absorbed gracefully: the PSA
        # drains those nodes at task boundaries instead of being preempted.
        assert psa.stats.killed_tasks <= 1
        assert psa.stats.waste_node_seconds <= psa.task_duration

    def test_waste_decreases_with_announce_interval(self):
        evolution = WorkingSetEvolution(np.linspace(5_000.0, 100_000.0, 15))
        waste = {}
        for interval in (0.0, 60.0):
            sim, _, rms = make_env(nodes=64)
            amr = AmrApplication(
                "amr", evolution, preallocation_nodes=40, announce_interval=interval
            )
            psa = ParameterSweepApplication("psa", task_duration=50.0)
            amr.on_finished = lambda _app: psa.shutdown()
            amr.connect(rms)
            psa.connect(rms)
            sim.run()
            waste[interval] = psa.stats.waste_node_seconds
        assert waste[0.0] > 0.0
        assert waste[60.0] <= waste[0.0]
        assert waste[60.0] == pytest.approx(0.0, abs=1e-6)

    def test_killed_session_aborts_tasks(self):
        sim, platform, rms = make_env(nodes=8)
        psa = ParameterSweepApplication("psa", task_duration=100.0)
        psa.connect(rms)
        sim.run(until=50.0)
        rms.kill("psa", "testing")
        assert psa.killed
        assert psa.busy_count() == 0
        assert platform.cluster("cluster0").free_count() == 8
