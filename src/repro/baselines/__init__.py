"""Baselines the paper compares against: static allocation, strict
equi-partitioning and a rigid-only FCFS+CBF batch scheduler."""
from .batch_fcfs import BatchJobOutcome, BatchSchedulerBaseline, peak_static_job
from .static_rms import StaticRunPrediction, make_static_amr, predict_static_run
from .strict_equipartition import (
    make_filling_rms,
    make_rms,
    make_strict_equipartition_rms,
)

__all__ = [
    "BatchJobOutcome",
    "BatchSchedulerBaseline",
    "peak_static_job",
    "StaticRunPrediction",
    "make_static_amr",
    "predict_static_run",
    "make_rms",
    "make_filling_rms",
    "make_strict_equipartition_rms",
]
