"""``python -m repro`` -- centralised subcommand dispatch.

Every command group registers itself here through one uniform interface: a
``(name, add_commands, run_command)`` triple, where ``add_commands`` attaches
the group's sub-parser to the top-level parser and ``run_command`` executes a
parsed invocation.  ``python -m repro --help`` therefore always lists every
group -- adding one is a single entry in :data:`COMMAND_GROUPS`, not an edit
to an ad-hoc dispatch chain.

The top-level parser also carries the global ``-v``/``--verbose`` and
``-q``/``--quiet`` flags; :func:`main` feeds them into the shared
:func:`repro.obs.logging_setup` before dispatching, so every group's
narration obeys the same verbosity control.
"""
from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .campaign.cli import add_campaign_commands, run_campaign_command
from .dist.cli import add_dist_commands, run_dist_command
from .federation.cli import add_federation_commands, run_federation_command
from .obs.cli import add_obs_commands, run_obs_command
from .obs.logsetup import logging_setup
from .policies.cli import add_policy_commands, run_policy_command
from .traces.cli import add_trace_commands, run_trace_command

__all__ = ["COMMAND_GROUPS", "build_parser", "main"]

#: The registered command groups, in help-listing order.
COMMAND_GROUPS = (
    ("campaign", add_campaign_commands, run_campaign_command),
    ("dist", add_dist_commands, run_dist_command),
    ("trace", add_trace_commands, run_trace_command),
    ("policy", add_policy_commands, run_policy_command),
    ("federation", add_federation_commands, run_federation_command),
    ("obs", add_obs_commands, run_obs_command),
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "CooRMv2 reproduction -- campaign orchestration, workload traces, "
            "scheduling policies, multi-cluster federation and observability."
        ),
    )
    # Distinct dests (log_verbose/log_quiet) keep these global flags from
    # colliding with subcommand options like ``campaign run --quiet``:
    # argparse lets a subparser's defaults clobber same-named parent values.
    parser.add_argument(
        "-v", "--verbose", dest="log_verbose", action="store_true",
        help="debug-level narration on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", dest="log_quiet", action="store_true",
        help="warnings and errors only on stderr",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    for _name, add_commands, _run_command in COMMAND_GROUPS:
        add_commands(commands)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    logging_setup(
        verbose=getattr(args, "log_verbose", False),
        quiet=getattr(args, "log_quiet", False),
    )
    for name, _add_commands, run_command in COMMAND_GROUPS:
        if args.command == name:
            return run_command(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
