#!/usr/bin/env python
"""A mixed HPC workload under CooRMv2: rigid, moldable, malleable and evolving.

CooRMv2 is not only for evolving applications -- Section 4 of the paper shows
how every classical application type maps onto its request types.  This
example builds a small mixed workload:

* a stream of rigid batch jobs (generated with the workload generator),
* a moldable job that picks its node count from its non-preemptive view,
* a malleable job with a fixed minimum and an elastic preemptible part,
* a fully-predictably evolving workflow (grow then shrink),

runs it through the RMS, and compares the rigid jobs' waiting times with the
classical FCFS + Conservative Back-Filling baseline.

Run with::

    python examples/mixed_batch_workload.py
"""
from __future__ import annotations

from repro import CooRMv2, Platform, Simulator
from repro.apps import (
    EvolutionPhase,
    FullyPredictableEvolvingApplication,
    MalleableApplication,
    MoldableApplication,
    RigidApplication,
)
from repro.baselines import BatchSchedulerBaseline
from repro.metrics import format_table
from repro.workloads import WorkloadParameters, generate_rigid_workload


def main() -> None:
    cluster_nodes = 64
    rigid_jobs = generate_rigid_workload(
        WorkloadParameters(
            job_count=10, max_nodes=32, mean_interarrival=400.0, runtime_log_sigma=0.6
        ),
        seed=42,
    )

    # ---------------- CooRMv2 run ----------------------------------------
    simulator = Simulator()
    platform = Platform.single_cluster(cluster_nodes)
    rms = CooRMv2(platform, simulator, rescheduling_interval=1.0)

    rigid_apps = []
    for job in rigid_jobs:
        app = RigidApplication(job.job_id, node_count=job.node_count, duration=job.duration)
        simulator.schedule_at(job.submit_time, app.connect, rms)
        rigid_apps.append(app)

    moldable = MoldableApplication(
        "moldable",
        candidate_node_counts=[4, 8, 16, 32],
        walltime_model=lambda n: 14_400.0 / n,  # a 4 node-hour job
    )
    malleable = MalleableApplication("malleable", min_nodes=2, duration=3_000.0)
    workflow = FullyPredictableEvolvingApplication(
        "workflow",
        phases=[EvolutionPhase(4, 1_200.0), EvolutionPhase(16, 900.0), EvolutionPhase(2, 600.0)],
    )
    for app in (moldable, malleable, workflow):
        app.connect(rms)

    simulator.run()

    # ---------------- classical baseline ---------------------------------
    baseline = BatchSchedulerBaseline(cluster_nodes)
    baseline.run(rigid_jobs)
    baseline_by_id = baseline.outcome_by_id()

    # ---------------- report ---------------------------------------------
    rows = []
    for app, job in zip(rigid_apps, rigid_jobs):
        rows.append(
            (
                job.job_id,
                job.node_count,
                round(job.duration),
                round(app.wait_time()),
                round(baseline_by_id[job.job_id].wait_time),
            )
        )
    print("Rigid jobs: CooRMv2 vs classical FCFS + Conservative Back-Filling")
    print(
        format_table(
            ["job", "nodes", "runtime (s)", "wait under CooRMv2 (s)", "wait under CBF (s)"],
            rows,
        )
    )
    print()
    print(
        format_table(
            ["application", "finished", "makespan (s)"],
            [
                ("moldable (picked %d nodes)" % moldable.chosen_nodes, moldable.finished(), round(moldable.makespan())),
                ("malleable (min 2 nodes)", malleable.finished(), round(malleable.makespan())),
                ("workflow (4 -> 16 -> 2 nodes)", workflow.finished(), round(workflow.makespan())),
            ],
        )
    )
    print()
    print(
        "Reading: rigid jobs see CBF-like waiting times under CooRMv2, while\n"
        "the moldable, malleable and evolving applications coexist with them\n"
        "on the same cluster."
    )


if __name__ == "__main__":
    main()
