"""Spec model: validation, dict/JSON round-trips, scale resolution."""
import json

import pytest

from repro.campaign.spec import (
    CampaignSpec,
    PlatformSpec,
    RmsSpec,
    ScenarioSpec,
    WorkloadSpec,
    resolve_scale,
)


def full_scenario() -> ScenarioSpec:
    """A scenario exercising every non-default spec field."""
    return ScenarioSpec(
        name="everything",
        runner="amr_psa",
        scale="reduced",
        description="all knobs set",
        platform=PlatformSpec(cluster_nodes=128, cluster_headroom=1.5),
        workload=WorkloadSpec(
            include_amr=True,
            psa_task_durations=(600.0, 60.0),
            overcommit=2.0,
            announce_interval=100.0,
            static_allocation=True,
            rigid_job_count=5,
            rigid_max_nodes=16,
            rigid_mean_interarrival=120.0,
            rigid_runtime_median=300.0,
            trace_path=None,
        ),
        rms=RmsSpec(
            rescheduling_interval=2.0,
            strict_equipartition=True,
            kill_protocol_violators=True,
            violation_grace=10.0,
        ),
        params={"overcommit_factors": [0.5, 1.0]},
        metrics=("psa_waste_percent",),
    )


class TestScenarioSpecRoundTrip:
    def test_dict_round_trip_is_lossless(self):
        spec = full_scenario()
        data = spec.to_dict()
        assert ScenarioSpec.from_dict(data) == spec

    def test_dict_round_trip_is_canonical(self):
        # dict -> spec -> dict reproduces the dict exactly (tuples as lists).
        data = full_scenario().to_dict()
        assert ScenarioSpec.from_dict(data).to_dict() == data

    def test_to_dict_is_json_serialisable(self):
        text = json.dumps(full_scenario().to_dict(), sort_keys=True)
        assert ScenarioSpec.from_dict(json.loads(text)) == full_scenario()

    def test_defaults_round_trip(self):
        spec = ScenarioSpec(name="bare")
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        data = ScenarioSpec(name="x").to_dict()
        data["frobnicate"] = 1
        with pytest.raises(ValueError, match="frobnicate"):
            ScenarioSpec.from_dict(data)


class TestScenarioSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError, match="scale"):
            ScenarioSpec(name="x", scale="huge")

    def test_negative_overcommit_rejected(self):
        with pytest.raises(ValueError):
            WorkloadSpec(overcommit=-1.0)

    def test_bad_headroom_rejected(self):
        with pytest.raises(ValueError):
            PlatformSpec(cluster_headroom=0.5)

    def test_with_scale(self):
        assert ScenarioSpec(name="x").with_scale("paper").scale == "paper"


class TestCampaignSpec:
    def make(self, **kwargs) -> CampaignSpec:
        defaults = dict(
            name="camp",
            scenarios=(ScenarioSpec(name="a"), ScenarioSpec(name="b")),
            seeds=3,
            root_seed=7,
            workers=2,
            description="demo",
        )
        defaults.update(kwargs)
        return CampaignSpec(**defaults)

    def test_round_trip(self):
        spec = self.make()
        assert CampaignSpec.from_dict(spec.to_dict()) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_canonical_dict_round_trip(self):
        data = self.make().to_dict()
        assert CampaignSpec.from_dict(data).to_dict() == data

    def test_save_load(self, tmp_path):
        spec = self.make()
        path = tmp_path / "campaign.json"
        spec.save(path)
        assert CampaignSpec.load(path) == spec

    def test_run_count(self):
        assert self.make().run_count == 6

    def test_duplicate_scenarios_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            self.make(scenarios=(ScenarioSpec(name="a"), ScenarioSpec(name="a")))

    def test_empty_scenarios_rejected(self):
        with pytest.raises(ValueError):
            self.make(scenarios=())

    def test_nonpositive_seeds_rejected(self):
        with pytest.raises(ValueError):
            self.make(seeds=0)


class TestResolveScale:
    def test_named_scale_with_overrides(self):
        spec = ScenarioSpec(
            name="x",
            scale="tiny",
            rms=RmsSpec(rescheduling_interval=5.0),
            platform=PlatformSpec(cluster_headroom=2.0),
        )
        scale = resolve_scale(spec)
        assert scale.num_steps == 40  # tiny
        assert scale.rescheduling_interval == 5.0
        assert scale.cluster_headroom == 2.0
