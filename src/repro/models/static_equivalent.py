"""Dynamic vs equivalent-static allocation analysis (paper Section 2.3).

Given a working-set evolution and a target efficiency, this module computes

* the **dynamic allocation**: the per-step node count that keeps the
  application at the target efficiency, and the resulting consumed resource
  area :math:`A(e_t)` and end-time;
* the **equivalent static allocation** :math:`n_{eq}`: the constant node
  count that consumes the same resource area over the whole execution
  (requires a-posteriori knowledge of the evolution);
* the **end-time increase** caused by using the static allocation instead of
  the dynamic one (Figure 3, at most ~2.5 % for targets below 0.8);
* the **range of static choices** a user could defend without knowing the
  evolution: enough nodes to never run out of memory, but no more than 10 %
  extra resources compared to :math:`A(0.75)` (Figure 4).
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from .amr_evolution import WorkingSetEvolution
from .speedup import SpeedupModel, PAPER_SPEEDUP_MODEL

__all__ = [
    "DynamicAllocationResult",
    "StaticEquivalentResult",
    "dynamic_allocation",
    "equivalent_static_allocation",
    "end_time_increase",
    "static_allocation_range",
    "DEFAULT_NODE_MEMORY_MIB",
]

#: Memory per node assumed for the "no out-of-memory" constraint of Figure 4.
#: The paper does not publish the node memory of its reference platform; this
#: default (4 GiB/node) gives peak-size node counts in the same range as the
#: paper's Figure 4 x-axis (a few hundred to a few thousand hosts).
DEFAULT_NODE_MEMORY_MIB = 4096.0


@dataclass(frozen=True)
class DynamicAllocationResult:
    """Per-step allocation that tracks the target efficiency."""

    target_efficiency: float
    node_counts: np.ndarray
    step_durations: np.ndarray

    @property
    def consumed_area(self) -> float:
        """Total node-seconds (the paper's :math:`A(e_t)`)."""
        return float(np.sum(self.node_counts * self.step_durations))

    @property
    def end_time(self) -> float:
        """Total execution time of the dynamic allocation."""
        return float(np.sum(self.step_durations))

    @property
    def peak_nodes(self) -> int:
        """Largest per-step allocation (the NEA's worst-case requirement)."""
        return int(self.node_counts.max())


@dataclass(frozen=True)
class StaticEquivalentResult:
    """The equivalent static allocation and its consequences."""

    target_efficiency: float
    n_eq: float
    static_end_time: float
    dynamic_end_time: float
    consumed_area: float

    @property
    def end_time_increase(self) -> float:
        """Relative end-time increase of static over dynamic (e.g. 0.025 = 2.5 %)."""
        if self.dynamic_end_time <= 0:
            return 0.0
        return self.static_end_time / self.dynamic_end_time - 1.0


def dynamic_allocation(
    evolution: WorkingSetEvolution,
    target_efficiency: float,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> DynamicAllocationResult:
    """Compute the per-step allocation that keeps the target efficiency.

    Only the current step's data size is needed for each decision, which is
    why a non-predictably evolving application can follow this policy online.
    """
    nodes = np.empty(evolution.num_steps, dtype=float)
    durations = np.empty(evolution.num_steps, dtype=float)
    for i, size in enumerate(evolution.sizes_mib):
        n = model.nodes_for_efficiency(size, target_efficiency)
        nodes[i] = n
        durations[i] = model.step_duration(n, size)
    return DynamicAllocationResult(
        target_efficiency=target_efficiency,
        node_counts=nodes,
        step_durations=durations,
    )


def _static_area(n: float, sizes: np.ndarray, model: SpeedupModel) -> float:
    """Consumed area if *n* nodes are allocated during every step."""
    durations = model.a * sizes / n + model.b * n + model.c * sizes + model.d
    return float(n * np.sum(durations))


def equivalent_static_allocation(
    evolution: WorkingSetEvolution,
    target_efficiency: float,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
    max_nodes: int = 1_000_000,
) -> Optional[StaticEquivalentResult]:
    """Find the static node count consuming the same area as the dynamic run.

    Requires a-posteriori knowledge of the whole evolution.  Returns ``None``
    when no equivalent static allocation exists (the paper observes this for
    target efficiencies of roughly 0.8 and above: even a single node consumes
    more area than the very efficient dynamic allocation).
    """
    dyn = dynamic_allocation(evolution, target_efficiency, model)
    target_area = dyn.consumed_area
    sizes = evolution.sizes_mib

    lo, hi = 1.0, 2.0
    if _static_area(lo, sizes, model) > target_area:
        return None
    while _static_area(hi, sizes, model) < target_area and hi < max_nodes:
        lo, hi = hi, hi * 2
    if _static_area(hi, sizes, model) < target_area:
        return None

    # The consumed area is strictly increasing in n, so bisection converges.
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _static_area(mid, sizes, model) < target_area:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-6:
            break
    n_eq = 0.5 * (lo + hi)

    static_durations = model.a * sizes / n_eq + model.b * n_eq + model.c * sizes + model.d
    return StaticEquivalentResult(
        target_efficiency=target_efficiency,
        n_eq=n_eq,
        static_end_time=float(np.sum(static_durations)),
        dynamic_end_time=dyn.end_time,
        consumed_area=target_area,
    )


def end_time_increase(
    evolution: WorkingSetEvolution,
    target_efficiency: float,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> Optional[float]:
    """End-time increase (fraction) of the equivalent static allocation.

    This is one point of Figure 3.  ``None`` when :math:`n_{eq}` does not
    exist for this target efficiency.
    """
    result = equivalent_static_allocation(evolution, target_efficiency, model)
    return None if result is None else result.end_time_increase


def static_allocation_range(
    evolution: WorkingSetEvolution,
    target_efficiency: float = 0.75,
    overuse_tolerance: float = 0.10,
    node_memory_mib: float = DEFAULT_NODE_MEMORY_MIB,
    model: SpeedupModel = PAPER_SPEEDUP_MODEL,
) -> Optional[Tuple[int, int]]:
    """Range of defensible static node counts (Figure 4).

    The lower bound is the smallest node count whose aggregate memory holds
    the peak working set (no out-of-memory).  The upper bound is the largest
    node count whose consumed area stays within ``1 + overuse_tolerance``
    times the dynamic area :math:`A(e_t)`.  Returns ``None`` when the range is
    empty -- i.e. the user cannot pick any safe-and-efficient static
    allocation, which is exactly the paper's argument for RMS support.
    """
    if node_memory_mib <= 0:
        raise ValueError("node_memory_mib must be positive")
    dyn = dynamic_allocation(evolution, target_efficiency, model)
    max_area = (1.0 + overuse_tolerance) * dyn.consumed_area
    sizes = evolution.sizes_mib

    n_min = max(1, int(math.ceil(evolution.peak_size_mib / node_memory_mib)))

    # The consumed area is increasing in n, so search upward from n_min.
    if _static_area(n_min, sizes, model) > max_area:
        return None
    lo, hi = n_min, max(n_min * 2, n_min + 1)
    while _static_area(hi, sizes, model) <= max_area:
        lo, hi = hi, hi * 2
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if _static_area(mid, sizes, model) <= max_area:
            lo = mid
        else:
            hi = mid - 1
    return n_min, lo
