"""Integration tests of the experiment drivers (one per paper figure).

Each driver is run at a very small scale and checked for the qualitative
shape the corresponding figure shows.  The full-scale sweeps are run from
``benchmarks/`` and recorded in EXPERIMENTS.md.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    EvaluationScale,
    fig1_amr_profiles,
    fig2_speedup_fit,
    fig3_static_endtime,
    fig4_static_choices,
    fig9_spontaneous,
    fig10_announced,
    fig11_two_psas,
)

TINY = EvaluationScale.tiny()


class TestAnalyticFigures:
    def test_fig1_profiles_have_the_documented_shape(self):
        profiles = fig1_amr_profiles.run(seeds=(0, 1, 2))
        assert len(profiles) == 3
        for profile in profiles.values():
            assert len(profile) == 1000
            assert profile.max() == pytest.approx(1000.0)
            diffs = np.diff(profile)
            assert np.mean(diffs >= 0) > 0.5
        assert "Figure 1" in fig1_amr_profiles.main(seeds=(0, 1))

    def test_fig2_speedup_curves(self):
        curves = fig2_speedup_fit.run(node_counts=(1, 16, 256, 4096))
        for size, curve in curves.items():
            # Strong scaling: 256 nodes is faster than 1 node for every size.
            assert curve.duration_at(256) < curve.duration_at(1)
        # Larger meshes take longer at any node count.
        assert curves[3136.0].duration_at(16) > curves[12.0].duration_at(16)
        assert "Figure 2" in fig2_speedup_fit.main(node_counts=(1, 16))

    def test_fig3_end_time_increase_is_bounded(self):
        points = fig3_static_endtime.run(
            target_efficiencies=(0.3, 0.5, 0.7), seeds=(0, 1), num_steps=200
        )
        for point in points.values():
            assert point.feasible_fraction == 1.0
            assert 0.0 <= point.median_increase < 0.06
        assert "Figure 3" in fig3_static_endtime.main(
            target_efficiencies=(0.5,), seeds=(0,), num_steps=100
        )

    def test_fig4_range_narrows_with_data_size(self):
        rows = fig4_static_choices.run(relative_sizes=(0.5, 1.0, 4.0), num_steps=200)
        assert rows[0.5].feasible
        widths = {rel: (row.range_width if row.feasible else -1) for rel, row in rows.items()}
        # Larger problems leave the user less room to guess a static size.
        assert widths[4.0] < widths[0.5]
        assert "Figure 4" in fig4_static_choices.main(relative_sizes=(1.0,), num_steps=100)


class TestSimulationFigures:
    def test_fig9_shape(self):
        points = fig9_spontaneous.run(overcommit_factors=(1.0, 2.0), scale=TINY)
        assert len(points) == 2
        for point in points:
            assert point.static_amr_used_node_seconds > point.dynamic_amr_used_node_seconds
        # Static usage grows with the overcommit factor, dynamic barely moves.
        assert points[1].static_amr_used_node_seconds > points[0].static_amr_used_node_seconds
        assert points[1].dynamic_amr_used_node_seconds <= points[0].dynamic_amr_used_node_seconds * 1.25
        assert "Figure 9" in fig9_spontaneous.main(overcommit_factors=(1.0,), scale=TINY)

    def test_fig10_shape(self):
        intervals = (0.0, TINY.psa1_task_duration)
        points = fig10_announced.run(announce_intervals=intervals, scale=TINY)
        assert points[0].psa_waste_percent > 0
        assert points[1].psa_waste_percent == pytest.approx(0.0, abs=1e-6)
        assert points[1].amr_end_time_increase_percent > 0
        assert points[0].amr_end_time_increase_percent == pytest.approx(0.0, abs=1e-6)
        assert "Figure 10" in fig10_announced.main(announce_intervals=(0.0,), scale=TINY)

    def test_fig11_shape(self):
        intervals = (TINY.psa1_task_duration / 2,)
        points = fig11_two_psas.run(announce_intervals=intervals, scale=TINY)
        assert len(points) == 1
        assert points[0].filling_gain_percent > 0
        assert "Figure 11" in fig11_two_psas.main(announce_intervals=intervals, scale=TINY)
