"""Registry of scenario runners and built-in scenario definitions.

The campaign layer separates *what* a scenario is (a
:class:`~repro.campaign.spec.ScenarioSpec`) from *how* it executes (a
**runner**: a callable ``(spec, seed) -> {metric: value}``).  Runners are
registered by name so that specs stay serialisable -- a campaign JSON file
only ever references runners by their names.

Built-in scenarios (the paper's figures plus a few mixed-workload
configurations) register themselves here when :mod:`repro.campaign.builtin`
is imported, which :mod:`repro.campaign` guarantees.
"""
from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional

from .spec import ScenarioSpec

__all__ = [
    "ScenarioRunner",
    "register_runner",
    "get_runner",
    "runner_names",
    "register_scenario",
    "builtin_scenarios",
    "resolve_scenarios",
    "record_provenance",
    "consume_provenance",
]

#: A scenario runner executes one (spec, seed) pair and returns a flat,
#: JSON-serialisable mapping of metric name to value.
ScenarioRunner = Callable[[ScenarioSpec, int], Mapping[str, object]]

_RUNNERS: Dict[str, ScenarioRunner] = {}
_BUILTIN: Dict[str, ScenarioSpec] = {}

#: Workload provenance of the run currently executing in this process.
#: Runners publish it with :func:`record_provenance`; the campaign runner
#: pops it right after the runner returns.  Each worker process executes one
#: run at a time, so a single slot per process is race-free.
_PROVENANCE: List[Optional[Mapping]] = [None]


def record_provenance(provenance: Optional[Mapping]) -> None:
    """Publish the workload provenance of the currently executing run.

    Scenario runners call this with a JSON-friendly description of where
    their workload came from (trace file fingerprint, model parameters,
    transformation chain, generator knobs); the campaign runner attaches it
    to the run record so the result store can answer "what data produced
    these numbers?" long after the fact.
    """
    _PROVENANCE[0] = None if provenance is None else dict(provenance)


def consume_provenance() -> Optional[Dict]:
    """Pop the provenance published by the last runner invocation."""
    provenance = _PROVENANCE[0]
    _PROVENANCE[0] = None
    return None if provenance is None else dict(provenance)


def register_runner(name: str) -> Callable[[ScenarioRunner], ScenarioRunner]:
    """Decorator registering a scenario runner under *name*."""

    def decorator(fn: ScenarioRunner) -> ScenarioRunner:
        if name in _RUNNERS:
            raise ValueError(f"scenario runner {name!r} is already registered")
        _RUNNERS[name] = fn
        return fn

    return decorator


def get_runner(name: str) -> ScenarioRunner:
    """Look up a runner, with a helpful error listing the known names."""
    try:
        return _RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario runner {name!r}; known runners: {runner_names()}"
        ) from None


def runner_names() -> List[str]:
    return sorted(_RUNNERS)


def register_scenario(spec: ScenarioSpec) -> ScenarioSpec:
    """Register a built-in scenario definition (keyed by its name)."""
    if spec.name in _BUILTIN:
        raise ValueError(f"built-in scenario {spec.name!r} is already registered")
    _BUILTIN[spec.name] = spec
    return spec


def builtin_scenarios() -> Dict[str, ScenarioSpec]:
    """Name -> spec of every built-in scenario (a copy; safe to mutate)."""
    return dict(_BUILTIN)


def resolve_scenarios(
    names: Iterable[str], scale: Optional[str] = None
) -> List[ScenarioSpec]:
    """Resolve scenario *names* against the built-in registry.

    ``scale`` (when given) overrides the scale of every resolved scenario,
    which is how ``python -m repro campaign run --scale`` works.
    """
    specs: List[ScenarioSpec] = []
    for name in names:
        try:
            spec = _BUILTIN[name]
        except KeyError:
            known = ", ".join(sorted(_BUILTIN)) or "(none)"
            raise KeyError(
                f"unknown scenario {name!r}; built-in scenarios: {known}"
            ) from None
        specs.append(spec if scale is None else spec.with_scale(scale))
    return specs
