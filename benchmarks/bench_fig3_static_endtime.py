"""Benchmark and reproduction of Figure 3 (end-time increase of n_eq)."""
from __future__ import annotations

from repro.experiments import fig3_static_endtime


def test_fig3_end_time_increase(benchmark):
    """Time the Figure 3 sweep over target efficiencies (reduced seeds)."""
    points = benchmark(
        fig3_static_endtime.run,
        target_efficiencies=(0.1, 0.3, 0.5, 0.7, 0.8),
        seeds=(0, 1, 2),
        num_steps=300,
    )
    assert all(p.feasible_fraction > 0 for p in points.values())
    print()
    print(
        fig3_static_endtime.main(
            target_efficiencies=fig3_static_endtime.PAPER_TARGET_EFFICIENCIES,
            seeds=(0, 1, 2),
            num_steps=300,
        )
    )
