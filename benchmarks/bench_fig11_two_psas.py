"""Benchmark and reproduction of Figure 11 (two PSAs, filling vs strict)."""
from __future__ import annotations

from repro.experiments import fig11_two_psas, run_scenario


def test_fig11_single_two_psa_scenario(benchmark, bench_scale):
    """Time one scenario with two PSAs under the filling policy."""
    result = benchmark.pedantic(
        run_scenario,
        kwargs=dict(
            scale=bench_scale,
            seed=0,
            overcommit=1.0,
            announce_interval=bench_scale.psa1_task_duration / 2,
            psa_task_durations=(
                bench_scale.psa1_task_duration,
                bench_scale.psa2_task_duration,
            ),
        ),
        rounds=3,
        iterations=1,
    )
    assert result.amr.finished()
    assert len(result.psas) == 2


def test_fig11_sweep_report(benchmark, report_scale):
    """Time (and print) the filling-vs-strict comparison over announce intervals."""
    intervals = tuple(
        report_scale.psa1_task_duration * f for f in (0.0, 0.5, 1.0)
    )
    points = benchmark.pedantic(
        fig11_two_psas.run,
        kwargs=dict(announce_intervals=intervals, scale=report_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    # Equi-partitioning with filling never uses fewer resources than strict.
    assert all(p.filling_gain_percent >= -1.0 for p in points)
    assert any(p.filling_gain_percent > 0 for p in points)
    print()
    print(fig11_two_psas.main(announce_intervals=intervals, scale=report_scale))
