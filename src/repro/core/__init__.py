"""CooRMv2 core: requests, views, scheduling algorithms and the RMS server."""
from .types import (
    ApplicationKind,
    RelatedHow,
    RequestState,
    RequestType,
    Time,
)
from .errors import (
    AdmissionError,
    AllocationError,
    CapacityError,
    ConstraintError,
    ProfileError,
    ProtocolError,
    ReproError,
    RequestError,
    SchedulingError,
    SessionError,
    SimulationError,
    ViewError,
    WorkloadError,
    ExperimentError,
)
from .profile import StepFunction
from .view import View
from .request import Request
from .request_set import ApplicationRequests, RequestSet
from .toview import to_view
from .fit import fit
from .eqschedule import eq_schedule, max_min_fair
from .cbf import CbfJob, ConservativeBackfillQueue
from .scheduler import Scheduler, ScheduleResult
from .session import ApplicationProtocol, Session
from .accounting import Accountant, AllocationRecord, UsageSummary
from .events import (
    Connected,
    Disconnected,
    EventLog,
    ProtocolEvent,
    RequestDone,
    RequestExpired,
    RequestStarted,
    RequestSubmitted,
    SessionKilled,
    ViewsPushed,
)
from .rms import CooRMv2

__all__ = [
    # types
    "ApplicationKind",
    "RelatedHow",
    "RequestState",
    "RequestType",
    "Time",
    # errors
    "AdmissionError",
    "AllocationError",
    "CapacityError",
    "ConstraintError",
    "ProfileError",
    "ProtocolError",
    "ReproError",
    "RequestError",
    "SchedulingError",
    "SessionError",
    "SimulationError",
    "ViewError",
    "WorkloadError",
    "ExperimentError",
    # data structures
    "StepFunction",
    "View",
    "Request",
    "RequestSet",
    "ApplicationRequests",
    # algorithms
    "to_view",
    "fit",
    "eq_schedule",
    "max_min_fair",
    "CbfJob",
    "ConservativeBackfillQueue",
    "Scheduler",
    "ScheduleResult",
    # RMS server
    "ApplicationProtocol",
    "Session",
    "Accountant",
    "AllocationRecord",
    "UsageSummary",
    "CooRMv2",
    # protocol events
    "Connected",
    "Disconnected",
    "EventLog",
    "ProtocolEvent",
    "RequestDone",
    "RequestExpired",
    "RequestStarted",
    "RequestSubmitted",
    "SessionKilled",
    "ViewsPushed",
]
