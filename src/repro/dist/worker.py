"""The distributed campaign worker loop.

A worker is a pull-based client of the coordinator: it leases one run unit
at a time, executes it through the exact same
:func:`repro.campaign.runner._execute_task` path the multiprocessing pool
uses (so records are byte-identical by construction), streams the result
record -- simulation metrics, obs/metrics snapshots, SLO verdicts, phase
timings -- back over the channel, and asks for the next unit.

Worker-side protocol (all messages are flat JSON dictionaries)::

    -> {"op": "lease",  "worker": id}
    <- {"op": "grant",  "key": k, "task": {...}} | {"op": "wait"} | {"op": "stop"}
    -> {"op": "result", "worker": id, "key": k, "record": {...}}
    -> {"op": "error",  "worker": id, "key": k, "error": "..."}
    <- {"op": "ack"}
    -> {"op": "heartbeat", "worker": id}          # one-way, never replied

Heartbeats come from a daemon thread so a long-running simulation cannot
lose its lease; a dead worker stops heartbeating (and its connection
drops), which is exactly how the coordinator learns to reclaim its units.

``kill_after_leases`` is the chaos seam (the execution-tier analogue of the
``repro.faults`` crash events): a worker configured with it dies abruptly
-- ``os._exit``, no result, no goodbye -- after granting that many leases,
which the chaos tests and the CI smoke use to prove lease reclaim +
idempotency keys deliver exactly-once store rows.
"""
from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Dict, Mapping, Optional

from ..campaign.runner import _execute_task
from ..campaign.units import task_from_dict
from ..obs.logsetup import get_logger
from .transport import Channel, ChannelClosed, connect_tcp, parse_endpoint

__all__ = [
    "worker_loop",
    "ipc_worker_entry",
    "tcp_worker_entry",
    "run_standalone_worker",
    "default_worker_id",
]

_LOG = get_logger("dist")

#: Process-wide execution lock for in-process (thread transport) workers:
#: the obs hooks and the provenance slot are one-element process globals,
#: so two simulations must never run concurrently in one process.
_EXECUTE_LOCK = threading.Lock()

#: Exit code of a chaos-killed worker (visible in the handle's exitcode).
CHAOS_EXIT_CODE = 17


def default_worker_id() -> str:
    """Self-assigned identity of an external worker: host + pid."""
    return f"{socket.gethostname()}-{os.getpid()}"


class _Heartbeat:
    """Daemon thread sending one-way heartbeats while the loop runs."""

    def __init__(self, send, worker_id: str, interval: float):
        self._send = send
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        if self._interval <= 0:
            return
        self._thread = threading.Thread(
            target=self._run, name="dist-heartbeat", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send({"op": "heartbeat", "worker": self._worker_id})
            except ChannelClosed:
                return

    def stop(self) -> None:
        self._stop.set()


def worker_loop(channel: Channel, worker_id: str, options: Mapping) -> int:
    """Run the lease/execute/report loop until the coordinator says stop.

    Returns a process-style exit code: 0 on a clean stop (including "the
    coordinator went away", which after a finished campaign is the normal
    end of an external worker), nonzero on a local protocol error.
    """
    poll_interval = float(options.get("poll_interval", 0.05))
    reply_timeout = float(options.get("reply_timeout", 30.0))
    heartbeat_interval = float(options.get("heartbeat_interval", 0.0))
    kill_after_leases = int(options.get("kill_after_leases", 0))
    in_process = bool(options.get("in_process", False))

    send_lock = threading.Lock()

    def send(message: Dict) -> None:
        with send_lock:
            channel.send(message)

    heartbeat = _Heartbeat(send, worker_id, heartbeat_interval)
    heartbeat.start()
    leases = 0
    try:
        while True:
            try:
                send({"op": "lease", "worker": worker_id})
                reply = channel.recv(reply_timeout)
            except ChannelClosed:
                _LOG.debug("%s: coordinator went away; exiting", worker_id)
                return 0
            if reply is None:
                continue  # coordinator busy; ask again
            op = reply.get("op")
            if op == "stop":
                _LOG.debug("%s: received stop", worker_id)
                return 0
            if op == "wait":
                time.sleep(poll_interval)
                continue
            if op != "grant":
                _LOG.warning("%s: unexpected reply %r", worker_id, op)
                return 2
            leases += 1
            if kill_after_leases and leases >= kill_after_leases:
                # Chaos: die mid-unit, silently.  In-process workers cannot
                # os._exit (that would kill the coordinator too); closing
                # the channel without completing the unit is the same
                # failure as seen from the coordinator.
                _LOG.debug("%s: chaos kill after %d lease(s)", worker_id, leases)
                if in_process:
                    channel.close()
                    return CHAOS_EXIT_CODE
                os._exit(CHAOS_EXIT_CODE)
            key = str(reply["key"])
            task = task_from_dict(reply["task"])
            try:
                if in_process:
                    with _EXECUTE_LOCK:
                        record = _execute_task(task)
                else:
                    record = _execute_task(task)
            except Exception as exc:  # noqa: BLE001 - reported, retried upstream
                _LOG.warning("%s: unit %s failed: %s", worker_id, key, exc)
                outcome = {
                    "op": "error",
                    "worker": worker_id,
                    "key": key,
                    "error": f"{type(exc).__name__}: {exc}",
                }
            else:
                outcome = {
                    "op": "result",
                    "worker": worker_id,
                    "key": key,
                    "record": record,
                }
            try:
                send(outcome)
                channel.recv(reply_timeout)  # ack (or timeout; next lease resyncs)
            except ChannelClosed:
                return 0
    finally:
        heartbeat.stop()
        channel.close()


# --------------------------------------------------------------------- #
# Process entry points (top-level functions so they survive fork/spawn)
# --------------------------------------------------------------------- #
def _reset_signals() -> None:
    """Launched workers must not inherit the coordinator's handlers.

    A terminal ^C goes to the whole process group; ignoring SIGINT here
    lets the coordinator drain in-flight units instead of every worker
    dying mid-run, and SIGTERM's default keeps deliberate termination quiet.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def ipc_worker_entry(conn, worker_id: str, options: Dict) -> None:
    from .transport import PipeChannel

    _reset_signals()
    worker_loop(PipeChannel(conn), worker_id, options)


def tcp_worker_entry(host: str, port: int, worker_id: str, options: Dict) -> None:
    _reset_signals()
    channel = _connect_with_retry(host, port, float(options.get("connect_timeout", 10.0)))
    if channel is None:
        os._exit(3)
    worker_loop(channel, worker_id, options)


def _connect_with_retry(host: str, port: int, timeout: float):
    """Connect to a coordinator, retrying briefly while it binds/starts."""
    deadline = time.monotonic() + timeout
    while True:
        try:
            return connect_tcp(host, port, timeout=timeout)
        except OSError as exc:
            if time.monotonic() >= deadline:
                _LOG.warning("could not reach coordinator %s:%s: %s", host, port, exc)
                return None
            time.sleep(0.1)


def run_standalone_worker(endpoint: str, options: Optional[Dict] = None) -> int:
    """``python -m repro dist worker --connect host:port`` body."""
    host, port = parse_endpoint(endpoint)
    options = dict(options or {})
    options.setdefault("heartbeat_interval", 5.0)
    worker_id = str(options.get("worker_id") or default_worker_id())
    channel = _connect_with_retry(host, port, float(options.get("connect_timeout", 10.0)))
    if channel is None:
        return 3
    _LOG.info("worker %s connected to %s", worker_id, endpoint)
    return worker_loop(channel, worker_id, options)
