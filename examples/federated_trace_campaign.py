#!/usr/bin/env python
"""Replay one SWF trace across three heterogeneous clusters, two routings.

The federation subsystem multiplies every existing scenario across
multi-cluster topologies without touching the per-cluster semantics.  This
example shows the full loop on real(istic) input:

1. **declare** a scenario that replays the tiny 18-field SWF fixture from
   ``tests/data/`` onto the built-in ``hetero3`` topology (16/32/64-node
   clusters, each running its own CooRMv2 scheduler on one shared event
   engine);
2. **sweep** it over two routing policies with a routing x topology
   campaign -- every routing variant derives the same seed, so both
   routings fan in byte-for-byte the same jobs;
3. **report** the per-routing metrics and the per-cluster utilisation
   breakdown side by side from the result store.

Run with::

    PYTHONPATH=src python examples/federated_trace_campaign.py

See ``python -m repro federation list`` for every registered routing policy
and topology, and ``python -m repro campaign run --scenarios fed-dual-trace
--routings round-robin,least-loaded`` for the equivalent CLI invocation.
"""
from __future__ import annotations

import tempfile
from pathlib import Path

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    WorkloadSpec,
)
from repro.federation import describe_routing, get_topology
from repro.metrics import format_table

TRACE_PATH = Path(__file__).parent.parent / "tests" / "data" / "tiny.swf"

ROUTINGS = ("round-robin", "least-loaded")

#: Headline metrics worth comparing across routings.
METRICS = (
    "used_resources_percent",
    "total_allocated_node_seconds",
    "horizon",
    "trace_finished",
)

TOPOLOGY = get_topology("hetero3")


def main() -> None:
    print("topology:", TOPOLOGY.label())
    print("routings under comparison:")
    for name in ROUTINGS:
        print(f"  {name:13s} {describe_routing(name)}")

    scenario = ScenarioSpec(
        name="swf-federated",
        runner="amr_psa",
        description="tiny.swf fanned into three heterogeneous clusters",
        workload=WorkloadSpec(
            include_amr=False,
            trace={
                "path": str(TRACE_PATH),
                "strict": False,  # the fixture contains archive quirks
                "transforms": [
                    {"kind": "filter"},  # drop records that cannot run
                    # The largest member has 64 nodes; the 64-node job in the
                    # trace only ever fits there, which is exactly the kind of
                    # decision the routing policies must get right.
                    {"kind": "clamp_nodes", "max_nodes": 64},
                    {"kind": "shift_to_zero"},
                ],
            },
        ),
        federation=TOPOLOGY,
    )
    spec = CampaignSpec(
        name="swf-federated",
        scenarios=(scenario,),
        seeds=1,
        routings=ROUTINGS,
    )

    with tempfile.TemporaryDirectory() as tmp:
        store = ResultStore(tmp)
        result = CampaignRunner(spec, store=store).run()
        print(
            f"\nran {len(result.records)} runs "
            f"({len(ROUTINGS)} routings x {spec.seeds} seed) "
            f"in {result.elapsed_seconds:.2f}s"
        )
        matrix = store.routing_matrix(spec.name)["swf-federated"]

    rows = []
    for metric in METRICS:
        rows.append(
            tuple(
                [metric]
                + [f"{matrix[r].get(metric, float('nan')):g}" for r in ROUTINGS]
            )
        )
    print()
    print(format_table(["metric"] + list(ROUTINGS), rows))

    print()
    header = ["cluster"] + [f"util % ({r})" for r in ROUTINGS]
    cluster_rows = []
    for cluster in TOPOLOGY.cluster_names:
        cluster_rows.append(
            tuple(
                [f"{cluster} ({next(c.nodes for c in TOPOLOGY.clusters if c.name == cluster)}n)"]
                + [
                    f"{matrix[r].get(f'fed_util_pct[{cluster}]', float('nan')):.1f}"
                    for r in ROUTINGS
                ]
            )
        )
    print(format_table(header, cluster_rows))
    print(
        "\nSame trace, same seed, different routing -- any spread above is"
        "\npure meta-scheduling effect across the federated clusters."
    )


if __name__ == "__main__":
    main()
