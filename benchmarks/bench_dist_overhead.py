"""Dispatch-overhead benchmarks for the distributed campaign backend.

The dist tier (issue 10) must not tax the campaigns it coordinates: a
no-op run unit should clear the coordinator -- lease round trip, queue
bookkeeping, result ack, record collation -- fast enough that real
simulations dominate wall-clock even at small scenario sizes.  Two floors
pin that down:

* **Thread-transport dispatch** -- the in-process loopback is the pure
  protocol cost (no serialisation across a kernel boundary beyond the
  JSON frames themselves).
* **TCP-transport dispatch** -- the full socket path with length-prefixed
  frames, ``select``-driven polling and per-client receive buffers.

Every measurement uses plain ``time.perf_counter`` so the suite runs
under the bare pytest of the CI benchmarks job (no pytest-benchmark
plugin) and standalone via
``PYTHONPATH=src python benchmarks/bench_dist_overhead.py``.

When ``BENCH_10.json`` already exists in the working directory the
measured rates are merged into its ``dist_overhead`` section.

Floors are set well below a 2024-era dev container's throughput so they
only trip on genuine protocol regressions (per-unit sleeps, quadratic
queue scans, chatty reply loops), not machine jitter.
"""
from __future__ import annotations

import json
import statistics
import time
from pathlib import Path
from typing import Dict

from repro.campaign import CampaignRunner, CampaignSpec, ScenarioSpec
from repro.dist import ensure_noop_runner
from repro.dist.coordinator import Coordinator, DistConfig

#: Floors (no-op run units per second through the full coordinator loop).
THREAD_DISPATCH_FLOOR = 200.0
TCP_DISPATCH_FLOOR = 100.0

#: Merged-report file; sections are only written when it already exists.
BENCH_REPORT = "BENCH_10.json"


def _merge_into_bench_report(name: str, payload: Dict[str, object]) -> None:
    path = Path(BENCH_REPORT)
    if not path.is_file():
        return
    report = json.loads(path.read_text(encoding="utf-8"))
    report.setdefault("dist_overhead", {})[name] = payload
    path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8")


def _report(name: str, rate: float, floor: float) -> None:
    print(f"\n{name}: {rate:,.0f} units/s (floor {floor:,.0f})")
    _merge_into_bench_report(name, {"rate": rate, "floor": floor, "unit": "units/s"})


def noop_tasks(units: int):
    runner_name = ensure_noop_runner()
    spec = CampaignSpec(
        name="dist-overhead",
        scenarios=(ScenarioSpec(name="noop", runner=runner_name),),
        seeds=units,
    )
    return CampaignRunner(spec).tasks()


def _dispatch_rate(transport: str, units: int, workers: int, repeats: int) -> float:
    samples = []
    for _ in range(repeats):
        tasks = noop_tasks(units)
        config = DistConfig(transport=transport, poll_interval=0.001)
        started = time.perf_counter()
        outcome = Coordinator(tasks, config).run(workers)
        samples.append(time.perf_counter() - started)
        assert len(outcome.records) == units
        assert not outcome.failed
    return units / statistics.median(samples)


def test_thread_dispatch_floor():
    rate = _dispatch_rate("thread", units=64, workers=4, repeats=3)
    _report("dist_thread_units_per_second", rate, THREAD_DISPATCH_FLOOR)
    assert rate >= THREAD_DISPATCH_FLOOR


def test_tcp_dispatch_floor():
    rate = _dispatch_rate("tcp", units=32, workers=2, repeats=3)
    _report("dist_tcp_units_per_second", rate, TCP_DISPATCH_FLOOR)
    assert rate >= TCP_DISPATCH_FLOOR


if __name__ == "__main__":
    test_thread_dispatch_floor()
    test_tcp_dispatch_floor()
    print("\nall dist dispatch floors hold")
