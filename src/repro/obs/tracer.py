"""Sim-time structured tracing with deterministic, diffable exports.

An :class:`EventTracer` records structured events stamped with **simulated**
time (never wall-clock time) and an emission sequence number.  Because every
argument an instrumentation site passes is itself a pure function of the
simulation (callback qualnames, request counts, cluster names -- no object
ids, no timestamps, no process state), the recorded stream is byte-identical
for identical ``(scenario, policy, seed)`` runs at any campaign worker
count; the regression suite pins one export as a golden fixture.

Two export formats are supported:

* **JSONL** -- one sorted-keys JSON object per event; the canonical,
  diff-friendly format (`load_jsonl` reads it back).
* **Chrome ``trace_event`` JSON** -- loadable in ``chrome://tracing`` and
  Perfetto.  Simulated seconds are mapped to trace microseconds, categories
  become named threads, instant events carry their args, and counter events
  render as counter tracks.
"""
from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .logsetup import get_logger

__all__ = [
    "TraceEvent",
    "EventTracer",
    "load_jsonl",
    "load_chrome",
    "diff_events",
]

_LOG = get_logger("obs")

#: Recognised Chrome ``trace_event`` phases: instant and counter events.
PHASES = ("i", "C")


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event: simulated time + category + name + flat args."""

    #: Simulated time of the event, seconds.
    ts: float
    #: Emission order within the run (ties on ``ts`` stay ordered).
    seq: int
    #: Category: the subsystem that emitted the event (``engine``,
    #: ``scheduler``, ``federation``, ...); becomes a thread in Chrome.
    cat: str
    #: Event name within the category.
    name: str
    #: Chrome phase: ``"i"`` (instant) or ``"C"`` (counter).
    ph: str = "i"
    #: Flat, JSON-serialisable, deterministic arguments.
    args: Mapping[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "ts": self.ts,
            "seq": self.seq,
            "cat": self.cat,
            "name": self.name,
            "ph": self.ph,
            "args": dict(self.args),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TraceEvent":
        return cls(
            ts=float(data["ts"]),
            seq=int(data["seq"]),
            cat=str(data["cat"]),
            name=str(data["name"]),
            ph=str(data.get("ph", "i")),
            args=dict(data.get("args", {}) or {}),
        )


class EventTracer:
    """Append-only recorder of deterministic simulation events.

    The tracer itself never inspects wall-clock time or process identity;
    everything it stores comes from its callers, which are required to pass
    deterministic values only.  ``max_events`` bounds memory on very long
    runs: once reached, further events are counted (``dropped``) but not
    stored, and the export records the truncation explicitly rather than
    silently.
    """

    def __init__(self, max_events: int = 1_000_000):
        if max_events <= 0:
            raise ValueError("max_events must be positive")
        self.max_events = int(max_events)
        self.events: List[TraceEvent] = []
        self.dropped = 0
        self._seq = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def emit(
        self,
        ts: float,
        cat: str,
        name: str,
        args: Optional[Mapping[str, object]] = None,
        ph: str = "i",
    ) -> None:
        """Record one event at simulated time *ts*."""
        seq = self._seq
        self._seq = seq + 1
        if len(self.events) >= self.max_events:
            if self.dropped == 0:
                # One warning per tracer, never per event: a long run past
                # the cap would otherwise flood stderr.  The count keeps
                # accumulating and lands in every summary and export.
                _LOG.warning(
                    "event tracer reached max_events=%d; further events are "
                    "counted as dropped, not stored",
                    self.max_events,
                )
            self.dropped += 1
            return
        self.events.append(
            TraceEvent(ts=float(ts), seq=seq, cat=cat, name=name, ph=ph, args=args or {})
        )

    def counter(self, ts: float, cat: str, name: str, values: Mapping[str, float]) -> None:
        """Record a counter sample (a time-series point, ``ph="C"``)."""
        self.emit(ts, cat, name, args=values, ph="C")

    # ------------------------------------------------------------------ #
    # Inspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.events)

    def categories(self) -> Tuple[str, ...]:
        """Distinct categories, sorted."""
        return tuple(sorted({e.cat for e in self.events}))

    def count_by(self) -> Dict[Tuple[str, str], int]:
        """``(category, name) -> occurrence count`` over every event."""
        counts: Dict[Tuple[str, str], int] = {}
        for e in self.events:
            key = (e.cat, e.name)
            counts[key] = counts.get(key, 0) + 1
        return counts

    def of(self, cat: str, name: Optional[str] = None) -> List[TraceEvent]:
        """Events of one category (and optionally one name), in order."""
        return [
            e
            for e in self.events
            if e.cat == cat and (name is None or e.name == name)
        ]

    def summary(self) -> Dict[str, int]:
        """Recorded/dropped/total event counts (``dropped`` is explicit)."""
        return {
            "events": len(self.events),
            "dropped": self.dropped,
            "emitted": len(self.events) + self.dropped,
        }

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_jsonl(self) -> str:
        """Canonical JSONL export: one sorted-keys object per line."""
        lines = [
            json.dumps(e.to_dict(), sort_keys=True, allow_nan=False)
            for e in self.events
        ]
        if self.dropped:
            lines.append(
                json.dumps(
                    {"truncated": True, "dropped_events": self.dropped},
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n" if lines else ""

    def to_chrome(self, label: str = "repro") -> str:
        """Chrome ``trace_event`` JSON (the "JSON object format").

        Categories map to threads of one process; thread-name metadata
        events make ``chrome://tracing`` / Perfetto show the subsystem
        names.  Simulated seconds become trace microseconds.
        """
        cats = self.categories()
        tid_of = {cat: i + 1 for i, cat in enumerate(cats)}
        trace_events: List[Dict[str, object]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 1,
                "tid": 0,
                "args": {"name": label},
            }
        ]
        for cat in cats:
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid_of[cat],
                    "args": {"name": cat},
                }
            )
        for e in self.events:
            record: Dict[str, object] = {
                "name": e.name,
                "cat": e.cat,
                "ph": e.ph,
                # Simulated seconds -> microseconds, rounded so that float
                # noise cannot leak into the export bytes.
                "ts": round(e.ts * 1e6, 3),
                "pid": 1,
                "tid": tid_of[e.cat],
                # Emission order; Chrome ignores unknown keys, and carrying
                # it makes the export lossless (see ``load_chrome``).
                "seq": e.seq,
                "args": dict(e.args),
            }
            if e.ph == "i":
                record["s"] = "t"  # instant scope: thread
            trace_events.append(record)
        document = {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "source": "repro.obs",
                "event_count": len(self.events),
                "dropped_events": self.dropped,
            },
        }
        return json.dumps(document, sort_keys=True, allow_nan=False, indent=None)


# --------------------------------------------------------------------- #
# Reading exports back (the ``obs diff`` command and the golden tests)
# --------------------------------------------------------------------- #
def load_jsonl(text: str) -> List[TraceEvent]:
    """Parse a JSONL export back into events (truncation markers skipped).

    Raises :class:`ValueError` with the 1-based line number on malformed
    JSON, a non-object line, or an event record missing required keys, so a
    corrupted trace file points at its first broken line instead of a bare
    parser traceback.
    """
    events: List[TraceEvent] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {lineno}: invalid JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ValueError(
                f"line {lineno}: expected a JSON object, got {type(data).__name__}"
            )
        if "truncated" in data:
            continue
        try:
            events.append(TraceEvent.from_dict(data))
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"line {lineno}: not a valid trace event ({exc!r}): {line[:120]}"
            ) from exc
    return events


def load_chrome(text: str) -> List[TraceEvent]:
    """Parse a Chrome ``trace_event`` export back into events.

    The inverse of :meth:`EventTracer.to_chrome`: metadata events are
    skipped, thread ids map back to categories via the ``thread_name``
    records, trace microseconds become simulated seconds, and the carried
    ``seq`` keys restore the exact emission order.  Exact up to the
    microsecond rounding of ``ts`` (sub-microsecond simulated times do not
    survive; every whole-microsecond time round-trips bit-for-bit).
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid Chrome trace JSON: {exc}") from exc
    if not isinstance(document, dict) or "traceEvents" not in document:
        raise ValueError("not a Chrome trace_event document (no 'traceEvents')")
    events: List[TraceEvent] = []
    for record in document["traceEvents"]:
        if record.get("ph") == "M":
            continue
        try:
            events.append(
                TraceEvent(
                    ts=float(record["ts"]) / 1e6,
                    seq=int(record["seq"]),
                    cat=str(record["cat"]),
                    name=str(record["name"]),
                    ph=str(record.get("ph", "i")),
                    args=dict(record.get("args", {}) or {}),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed trace_event record ({exc!r}): {record!r}") from exc
    events.sort(key=lambda e: e.seq)
    return events


def diff_events(
    a: Sequence[TraceEvent], b: Sequence[TraceEvent], context: int = 2
) -> List[str]:
    """Human-readable description of where two event streams diverge.

    Returns an empty list when the streams are identical; otherwise a list
    of description lines: the first divergent index with *context* (default
    +-2) surrounding events of each stream, seq numbers included, or the
    length mismatch when one stream is a prefix of the other.
    """
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            lines = [f"streams diverge at event {i}:"]
            lo = max(0, i - context)
            for side, stream in (("a", a), ("b", b)):
                for j in range(lo, min(len(stream), i + context + 1)):
                    marker = ">>" if j == i else "  "
                    e = stream[j]
                    lines.append(
                        f"{marker} {side}[{j}] seq={e.seq} t={e.ts:g} "
                        f"{e.cat}/{e.name} {dict(e.args)}"
                    )
            return lines
    if len(a) != len(b):
        return [
            f"streams are identical for {limit} events, then lengths differ: "
            f"{len(a)} vs {len(b)}"
        ]
    return []
