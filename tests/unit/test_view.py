"""Unit tests of the per-cluster views."""
from __future__ import annotations

import math

import pytest

from repro.core import Request, RequestType, StepFunction, View, ViewError


def make_request(n=4, duration=100.0, cluster="a", scheduled_at=0.0, earliest=0.0):
    r = Request(cluster, n, duration, RequestType.NON_PREEMPTIBLE)
    r.scheduled_at = scheduled_at
    r.earliest_schedule_at = earliest
    return r


class TestConstruction:
    def test_empty_view(self):
        v = View.empty()
        assert len(v) == 0
        assert v["missing"].is_zero()
        assert v.is_zero()

    def test_constant(self):
        v = View.constant({"a": 4, "b": 6})
        assert v.value_at("a", 100) == 4
        assert v.value_at("b", 0) == 6
        assert set(v.clusters()) == {"a", "b"}

    def test_rejects_non_profiles(self):
        with pytest.raises(ViewError):
            View({"a": 42})

    def test_from_duration_pairs(self):
        v = View.from_duration_pairs({"a": [(3600, 4), (3600, 3)], "b": [(1, 6)]})
        assert v["a"].value_at(1800) == 4
        assert v["a"].value_at(3600) == 3
        assert v["a"].value_at(7200) == 0
        assert v["b"].value_at(0.5) == 6

    def test_contains_and_iter(self):
        v = View.constant({"b": 1, "a": 2})
        assert "a" in v and "c" not in v
        assert list(iter(v)) == ["a", "b"]
        assert dict(v.items())["a"].value_at(0) == 2


class TestAlgebra:
    def test_add_sub_over_disjoint_clusters(self):
        v1 = View.constant({"a": 4})
        v2 = View.constant({"b": 6})
        total = v1 + v2
        assert total.value_at("a", 0) == 4
        assert total.value_at("b", 0) == 6
        diff = total - v2
        assert diff.value_at("b", 0) == 0
        assert diff.value_at("a", 0) == 4

    def test_union_is_pointwise_max(self):
        v1 = View({"a": StepFunction.from_duration_pairs([(10, 5)])})
        v2 = View({"a": StepFunction.from_duration_pairs([(20, 3)])})
        u = v1 | v2
        assert u.value_at("a", 5) == 5
        assert u.value_at("a", 15) == 3

    def test_clip_low(self):
        v = View.constant({"a": 2}) - View.constant({"a": 5})
        assert v.value_at("a", 0) == -3
        assert v.clip_low(0).value_at("a", 0) == 0
        assert v.clip_low(0).is_non_negative()

    def test_clip_high(self):
        v = View.constant({"a": 10, "b": 10})
        clipped = v.clip_high({"a": 4})
        assert clipped.value_at("a", 0) == 4
        assert clipped.value_at("b", 0) == 10

    def test_add_rectangle(self):
        v = View.constant({"a": 2}).add_rectangle("a", 10, 5, 3)
        assert v.value_at("a", 12) == 5
        assert v.value_at("a", 16) == 2

    def test_integrate_sums_clusters(self):
        v = View.from_duration_pairs({"a": [(10, 2)], "b": [(10, 3)]})
        assert v.integrate(0, 10) == pytest.approx(50)

    def test_equality(self):
        assert View.constant({"a": 3}) == View.constant({"a": 3})
        assert View.constant({"a": 3}) != View.constant({"a": 4})
        # Absent clusters compare as zero profiles.
        assert View({"a": StepFunction.zero()}) == View.empty()

    def test_to_duration_pairs(self):
        v = View.constant({"a": 3})
        pairs = v.to_duration_pairs(horizon=10)
        assert pairs["a"] == [(10.0, 3.0)]


class TestSchedulingPrimitives:
    def test_alloc_limits_to_available(self):
        v = View({"a": StepFunction.constant(10).subtract_rectangle(0, 50, 7)})
        r = make_request(n=5, duration=10, cluster="a", scheduled_at=0)
        assert v.alloc(r) == 3
        r2 = make_request(n=5, duration=10, cluster="a", scheduled_at=60)
        assert v.alloc(r2) == 5

    def test_alloc_unknown_cluster_is_zero(self):
        v = View.empty()
        assert v.alloc(make_request(cluster="nope")) == 0

    def test_find_hole_uses_earliest_schedule(self):
        v = View.constant({"a": 10})
        r = make_request(n=4, duration=10, cluster="a", earliest=25)
        assert v.find_hole(r, not_before=0) == 25
        assert v.find_hole(r, not_before=40) == 40

    def test_find_hole_waits_for_capacity(self):
        profile = StepFunction.constant(10).subtract_rectangle(0, 100, 9)
        v = View({"a": profile})
        r = make_request(n=5, duration=10, cluster="a")
        assert v.find_hole(r) == 100

    def test_find_hole_impossible(self):
        v = View.constant({"a": 2})
        r = make_request(n=5, duration=10, cluster="a")
        assert math.isinf(v.find_hole(r))
