"""The Standard Workload Format (SWF) of the Parallel Workloads Archive.

An SWF file describes one job per line with 18 whitespace-separated fields
(job number, submit/wait/run times, processor and memory usage, status, user
and group ids, queue/partition, inter-job dependencies).  Header lines start
with ``;`` and either carry a ``Key: value`` directive (``UnixStartTime``,
``MaxNodes``, ``MaxProcs``, ...) or free-form comments.  This module parses
and writes the full format -- gzip-compressed or plain, strict or lenient --
into :class:`Trace` objects that carry their provenance with them.

Unknown values are ``-1`` throughout, as mandated by the format.
"""
from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..core.errors import WorkloadError
from ..core.textio import read_trace_text, write_text_file
from ..obs import hooks as _obs
from ..obs.logsetup import get_logger
from ..workloads.generator import RigidJobSpec

__all__ = [
    "SWF_FIELDS",
    "SwfJob",
    "SwfHeader",
    "Trace",
    "load_swf",
    "loads_swf",
    "dump_swf",
    "dumps_swf",
]

#: The 18 fields of one SWF job line, in file order.
SWF_FIELDS: Tuple[str, ...] = (
    "job_number",
    "submit_time",
    "wait_time",
    "run_time",
    "used_procs",
    "avg_cpu_time",
    "used_memory",
    "req_procs",
    "req_time",
    "req_memory",
    "status",
    "user_id",
    "group_id",
    "executable",
    "queue",
    "partition",
    "preceding_job",
    "think_time",
)

#: Fields parsed as integers; the rest are floats (times, memory sizes).
_INT_FIELDS = frozenset(
    {
        "job_number",
        "used_procs",
        "req_procs",
        "status",
        "user_id",
        "group_id",
        "executable",
        "queue",
        "partition",
        "preceding_job",
    }
)

#: SWF status codes (field 11): 0 failed, 1 completed, 5 cancelled, ...
STATUS_COMPLETED = 1


@dataclass(frozen=True)
class SwfJob:
    """One job record of an SWF trace (all 18 standard fields).

    Times are seconds relative to the trace start; ``-1`` means unknown.
    """

    job_number: int
    submit_time: float
    wait_time: float = -1.0
    run_time: float = -1.0
    used_procs: int = -1
    avg_cpu_time: float = -1.0
    used_memory: float = -1.0
    req_procs: int = -1
    req_time: float = -1.0
    req_memory: float = -1.0
    status: int = -1
    user_id: int = -1
    group_id: int = -1
    executable: int = -1
    queue: int = -1
    partition: int = -1
    preceding_job: int = -1
    think_time: float = -1.0

    @property
    def node_count(self) -> int:
        """Processors the job asks for (requested, else used, else 1)."""
        if self.req_procs > 0:
            return self.req_procs
        if self.used_procs > 0:
            return self.used_procs
        return 1

    @property
    def duration(self) -> float:
        """Seconds the job runs for (actual, else requested, else 0)."""
        if self.run_time > 0:
            return self.run_time
        if self.req_time > 0:
            return self.req_time
        return 0.0

    @property
    def area(self) -> float:
        """Node-seconds the job consumes."""
        return self.node_count * self.duration

    def is_valid_job(self) -> bool:
        """Whether the record describes a runnable job (positive size/time)."""
        return self.submit_time >= 0 and self.node_count > 0 and self.duration > 0

    def to_rigid(self) -> RigidJobSpec:
        """Project the record onto the simulator's rigid-job fields."""
        return RigidJobSpec(
            job_id=f"swf{self.job_number}",
            submit_time=float(self.submit_time),
            node_count=self.node_count,
            duration=self.duration,
        )

    def to_fields(self) -> Tuple:
        return tuple(getattr(self, name) for name in SWF_FIELDS)


@dataclass(frozen=True)
class SwfHeader:
    """The ``;``-prefixed header of an SWF file.

    ``directives`` maps directive names (``MaxNodes``, ``UnixStartTime``, ...)
    to their raw string values, preserving file order; ``comments`` keeps the
    free-form comment lines (without the ``;`` prefix) that precede or
    interleave the directives.
    """

    directives: Mapping[str, str] = field(default_factory=dict)
    comments: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "directives", dict(self.directives))
        object.__setattr__(self, "comments", tuple(str(c) for c in self.comments))

    def _number(self, key: str) -> Optional[float]:
        raw = self.directives.get(key)
        if raw is None:
            return None
        try:
            return float(raw.split()[0])
        except (ValueError, IndexError):
            return None

    @property
    def unix_start_time(self) -> Optional[int]:
        value = self._number("UnixStartTime")
        return None if value is None else int(value)

    @property
    def max_nodes(self) -> Optional[int]:
        value = self._number("MaxNodes")
        return None if value is None else int(value)

    @property
    def max_procs(self) -> Optional[int]:
        value = self._number("MaxProcs")
        return None if value is None else int(value)

    def with_directive(self, key: str, value: object) -> "SwfHeader":
        directives = dict(self.directives)
        directives[str(key)] = str(value)
        return SwfHeader(directives=directives, comments=self.comments)


@dataclass(frozen=True)
class Trace:
    """An SWF workload trace: header, jobs and accumulated provenance.

    ``provenance`` records where the jobs came from (file path and
    fingerprint, or model parameters) and every transformation applied since
    -- it rides along through the pipeline but never takes part in equality,
    so round-tripping a trace through its textual form compares equal.
    """

    header: SwfHeader = field(default_factory=SwfHeader)
    jobs: Tuple[SwfJob, ...] = ()
    provenance: Tuple[Mapping, ...] = field(default=(), compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "jobs", tuple(self.jobs))
        object.__setattr__(
            self, "provenance", tuple(dict(step) for step in self.provenance)
        )

    @property
    def job_count(self) -> int:
        return len(self.jobs)

    @property
    def max_nodes(self) -> int:
        """Cluster size: the MaxNodes/MaxProcs directive, else the job peak."""
        declared = self.header.max_nodes or self.header.max_procs
        if declared is not None and declared > 0:
            return int(declared)
        return max((job.node_count for job in self.jobs), default=0)

    @property
    def span(self) -> float:
        """Seconds between the first and the last submission."""
        if not self.jobs:
            return 0.0
        times = [job.submit_time for job in self.jobs]
        return max(times) - min(times)

    def total_area(self) -> float:
        """Node-seconds summed over every job."""
        return sum(job.area for job in self.jobs)

    def with_jobs(self, jobs: Iterable[SwfJob], step: Optional[Mapping] = None) -> "Trace":
        """A copy holding *jobs*, with *step* appended to the provenance."""
        provenance = self.provenance if step is None else self.provenance + (dict(step),)
        return Trace(header=self.header, jobs=tuple(jobs), provenance=provenance)

    def with_header(self, header: SwfHeader) -> "Trace":
        return replace(self, header=header)

    def with_step(self, step: Mapping) -> "Trace":
        """A copy with *step* appended to the provenance."""
        return replace(self, provenance=self.provenance + (dict(step),))

    def to_rigid_jobs(self) -> List[RigidJobSpec]:
        """Runnable rigid jobs, sorted by submit time (invalid records drop)."""
        jobs = [job.to_rigid() for job in self.jobs if job.is_valid_job()]
        jobs.sort(key=lambda j: (j.submit_time, j.job_id))
        return jobs

    def provenance_dict(self) -> Dict:
        """JSON-friendly provenance summary (used by campaign records)."""
        return {"steps": [dict(step) for step in self.provenance]}

    @property
    def skipped_lines(self) -> int:
        """Malformed job lines dropped by lenient parsing, from provenance."""
        return sum(int(step.get("skipped_lines", 0)) for step in self.provenance)


# --------------------------------------------------------------------- #
# Parsing
# --------------------------------------------------------------------- #
def _parse_value(name: str, token: str, where: str):
    try:
        if name in _INT_FIELDS:
            # Some archives write integer fields as "123.0"; accept that.
            return int(float(token)) if "." in token else int(token)
        return float(token)
    except ValueError:
        raise WorkloadError(f"{where}: bad value {token!r} for field {name!r}") from None


def _build_row_parser():
    """Compile ``tokens -> field dict`` with the int/float calls inlined.

    Ingest is the hot loop of trace replay: 18 converter *function calls*
    per line (the obvious implementation) cost more than the parsing itself.
    Generating one lambda whose body is a dict display of direct ``int()`` /
    ``float()`` calls keeps the per-line Python-call count at one.  The
    parser is intentionally strict -- any token ``int()``/``float()`` reject
    (e.g. ``"123.0"`` in an integer field) raises ``ValueError`` and the
    caller falls back to :func:`_parse_value`, which owns the tolerant
    conversions and the error messages.
    """
    parts = []
    for i, name in enumerate(SWF_FIELDS):
        fn = "int" if name in _INT_FIELDS else "float"
        parts.append(f"{name!r}: {fn}(t[{i}])")
    return eval("lambda t: {" + ", ".join(parts) + "}")  # noqa: S307 - static source


_ROW_PARSER = _build_row_parser()


def _parse_job_slow(tokens: List[str], strict: bool, where: str) -> Optional[SwfJob]:
    """Tolerant per-field job-line parser (arity fixes, ``123.0`` ints).

    Returns ``None`` when the line must be skipped (lenient mode); raises
    :class:`WorkloadError` in strict mode.  This is the original parsing
    path, kept as the fallback of the generated fast parser so error
    messages and lenient-mode behaviour are unchanged.
    """
    if len(tokens) > len(SWF_FIELDS):
        if strict:
            raise WorkloadError(
                f"{where}: expected {len(SWF_FIELDS)} fields, got {len(tokens)}"
            )
        tokens = tokens[: len(SWF_FIELDS)]
    if len(tokens) < len(SWF_FIELDS):
        if strict:
            raise WorkloadError(
                f"{where}: expected {len(SWF_FIELDS)} fields, got {len(tokens)}"
            )
        tokens = tokens + ["-1"] * (len(SWF_FIELDS) - len(tokens))
    try:
        values = {
            name: _parse_value(name, token, where)
            for name, token in zip(SWF_FIELDS, tokens)
        }
    except WorkloadError:
        if strict:
            raise
        return None
    return SwfJob(**values)


#: One-element warn-once slot: the first lenient skip in a process warns,
#: repeats drop to DEBUG so bulk ingestion does not spam stderr.
_SKIP_WARNED = [False]


def loads_swf(
    text: str, *, strict: bool = True, source: str = "<string>"
) -> Trace:
    """Parse SWF *text* into a :class:`Trace`.

    In strict mode any malformed line raises a :class:`WorkloadError`
    annotated with *source* and the line number.  In lenient mode malformed
    job lines are skipped (and counted in the provenance), and job lines with
    fewer than 18 fields are padded with ``-1`` -- both defects are common in
    archived traces.
    """
    profiler = _obs.PROFILER[0]
    ingest_started = time.perf_counter() if profiler is not None else 0.0
    directives: Dict[str, str] = {}
    comments: List[str] = []
    jobs: List[SwfJob] = []
    skipped = 0
    # Hot-loop locals: the fast row parser plus the pieces of the frozen
    # dataclass construction.  ``SwfJob`` has no __post_init__, so adopting
    # the parsed dict as the instance __dict__ is equivalent to (and several
    # times faster than) the generated __init__ with its 18 guarded
    # object.__setattr__ calls.
    n_fields = len(SWF_FIELDS)
    parse_row = _ROW_PARSER
    new_job = object.__new__
    set_attr = object.__setattr__
    append_job = jobs.append
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        first = line[0]
        if first == ";":
            body = line.lstrip(";").strip()
            key, sep, value = body.partition(":")
            if sep and key.strip() and " " not in key.strip():
                directives[key.strip()] = value.strip()
            elif body:
                comments.append(body)
            continue
        if first == "#":  # not standard SWF, but tolerated
            comments.append(line.lstrip("#").strip())
            continue
        tokens = line.split()
        if len(tokens) == n_fields:
            try:
                values = parse_row(tokens)
            except ValueError:
                values = None
            if values is not None:
                job = new_job(SwfJob)
                set_attr(job, "__dict__", values)
                append_job(job)
                continue
        job = _parse_job_slow(tokens, strict, f"{source}:{lineno}")
        if job is None:
            skipped += 1
        else:
            append_job(job)

    if profiler is not None:
        profiler.add("trace.ingest", time.perf_counter() - ingest_started)
    step: Dict[str, object] = {"kind": "load", "source": source, "jobs": len(jobs)}
    if skipped:
        step["skipped_lines"] = skipped
        if not _SKIP_WARNED[0]:
            _SKIP_WARNED[0] = True
            get_logger("trace").warning(
                "%s: lenient parse skipped %d malformed job line%s "
                "(counted in provenance; further skips logged at DEBUG)",
                source, skipped, "" if skipped == 1 else "s",
            )
        else:
            get_logger("trace").debug(
                "%s: lenient parse skipped %d malformed job lines", source, skipped
            )
    return Trace(
        header=SwfHeader(directives=directives, comments=tuple(comments)),
        jobs=tuple(jobs),
        provenance=(step,),
    )


def load_swf(path: Union[str, Path], *, strict: bool = True) -> Trace:
    """Read an SWF file (transparently gunzipping ``*.gz`` paths)."""
    return loads_swf(read_trace_text(path), strict=strict, source=str(path))


def _format_value(value) -> str:
    if isinstance(value, float):
        # inf/nan parse as floats, so a pathological trace can carry them;
        # repr round-trips them where int() would raise.
        if math.isfinite(value) and value == int(value):
            return str(int(value))
        return repr(value)  # shortest exact form: parses back bit-identically
    return str(value)


def dumps_swf(trace: Trace) -> str:
    """Serialise a trace to SWF text (comments, directives, then jobs)."""
    lines: List[str] = [f"; {comment}" for comment in trace.header.comments]
    lines.extend(
        f"; {key}: {value}" for key, value in trace.header.directives.items()
    )
    for job in trace.jobs:
        lines.append(" ".join(_format_value(v) for v in job.to_fields()))
    return "\n".join(lines) + "\n"


def dump_swf(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace as an SWF file (gzip-compressing ``*.gz`` paths)."""
    write_text_file(Path(path), dumps_swf(trace))
