"""Unit tests of the step-function availability profiles."""
from __future__ import annotations

import math

import pytest

from repro.core import ProfileError, StepFunction


class TestConstruction:
    def test_default_is_zero(self):
        s = StepFunction()
        assert s.is_zero()
        assert s.value_at(0) == 0
        assert s.value_at(1e9) == 0

    def test_constant(self):
        s = StepFunction.constant(7)
        assert s.value_at(0) == 7
        assert s.value_at(12345.6) == 7
        assert s.max_value() == 7
        assert s.min_value() == 7

    def test_must_start_at_zero(self):
        with pytest.raises(ProfileError):
            StepFunction([1.0], [3.0])

    def test_breakpoints_must_increase(self):
        with pytest.raises(ProfileError):
            StepFunction([0.0, 5.0, 5.0], [1.0, 2.0, 3.0])
        with pytest.raises(ProfileError):
            StepFunction([0.0, 5.0, 4.0], [1.0, 2.0, 3.0])

    def test_lengths_must_match(self):
        with pytest.raises(ProfileError):
            StepFunction([0.0, 1.0], [1.0])

    def test_infinite_breakpoint_rejected(self):
        with pytest.raises(ProfileError):
            StepFunction([0.0, math.inf], [1.0, 2.0])

    def test_adjacent_equal_values_are_merged(self):
        s = StepFunction([0.0, 10.0, 20.0], [5.0, 5.0, 3.0])
        assert s.times == (0.0, 20.0)
        assert s.values == (5.0, 3.0)

    def test_from_duration_pairs_paper_example(self):
        # The paper's example: 4 nodes for an hour, then 3 for an hour, then 0.
        s = StepFunction.from_duration_pairs([(3600, 4), (3600, 3)])
        assert s.value_at(1800) == 4
        assert s.value_at(3600) == 3
        assert s.value_at(7200) == 0

    def test_from_duration_pairs_rejects_non_positive_durations(self):
        with pytest.raises(ProfileError):
            StepFunction.from_duration_pairs([(0, 4)])

    def test_rectangle(self):
        r = StepFunction.rectangle(10, 5, 3)
        assert r.value_at(9.9) == 0
        assert r.value_at(10) == 3
        assert r.value_at(14.99) == 3
        assert r.value_at(15) == 0

    def test_rectangle_starting_at_zero(self):
        r = StepFunction.rectangle(0, 5, 3)
        assert r.value_at(0) == 3
        assert r.value_at(5) == 0

    def test_rectangle_infinite_duration(self):
        r = StepFunction.rectangle(10, math.inf, 2)
        assert r.value_at(9) == 0
        assert r.value_at(1e12) == 2

    def test_rectangle_zero_height_or_duration_is_zero(self):
        assert StepFunction.rectangle(5, 0, 3).is_zero()
        assert StepFunction.rectangle(5, 3, 0).is_zero()

    def test_rectangle_negative_rejected(self):
        with pytest.raises(ProfileError):
            StepFunction.rectangle(-1, 5, 3)
        with pytest.raises(ProfileError):
            StepFunction.rectangle(1, -5, 3)


class TestQueries:
    def test_value_before_zero_is_zero(self):
        s = StepFunction.constant(4)
        assert s.value_at(-1) == 0

    def test_value_at_breakpoints(self):
        s = StepFunction([0.0, 10.0, 20.0], [1.0, 2.0, 3.0])
        assert s.value_at(0) == 1
        assert s.value_at(10) == 2
        assert s.value_at(19.999) == 2
        assert s.value_at(20) == 3

    def test_min_over(self):
        s = StepFunction([0.0, 10.0, 20.0], [5.0, 2.0, 8.0])
        assert s.min_over(0, 10) == 5
        assert s.min_over(0, 11) == 2
        assert s.min_over(15, 25) == 2
        assert s.min_over(20, 30) == 8

    def test_min_over_empty_window(self):
        s = StepFunction([0.0, 10.0], [5.0, 2.0])
        assert s.min_over(3, 3) == 5

    def test_integrate(self):
        s = StepFunction.from_duration_pairs([(10, 2), (10, 3)])
        assert s.integrate(0, 20) == pytest.approx(50)
        assert s.integrate(5, 15) == pytest.approx(2 * 5 + 3 * 5)
        assert s.integrate(0, math.inf) == pytest.approx(50)

    def test_integrate_nonzero_to_infinity_raises(self):
        with pytest.raises(ProfileError):
            StepFunction.constant(1).integrate(0, math.inf)

    def test_segments(self):
        s = StepFunction([0.0, 10.0], [1.0, 2.0])
        segs = list(s.segments())
        assert segs[0] == (0.0, 10.0, 1.0)
        assert segs[1][0] == 10.0
        assert math.isinf(segs[1][1])

    def test_to_duration_pairs_roundtrip(self):
        s = StepFunction.from_duration_pairs([(10, 4), (20, 2)])
        pairs = s.to_duration_pairs(horizon=30)
        rebuilt = StepFunction.from_duration_pairs(pairs)
        assert rebuilt == s


class TestAlgebra:
    def test_add_and_subtract(self):
        a = StepFunction.from_duration_pairs([(10, 3)])
        b = StepFunction.from_duration_pairs([(5, 2), (10, 1)])
        c = a + b
        assert c.value_at(0) == 5
        assert c.value_at(7) == 4
        assert c.value_at(12) == 1
        assert (c - b) == a

    def test_maximum_is_pointwise(self):
        a = StepFunction.from_duration_pairs([(10, 3)])
        b = StepFunction.from_duration_pairs([(20, 2)])
        m = a.maximum(b)
        assert m.value_at(5) == 3
        assert m.value_at(15) == 2

    def test_minimum_is_pointwise(self):
        a = StepFunction.from_duration_pairs([(10, 3)])
        b = StepFunction.from_duration_pairs([(20, 2)])
        m = a.minimum(b)
        assert m.value_at(5) == 2
        assert m.value_at(15) == 0

    def test_clip_low_and_high(self):
        s = StepFunction.constant(5) - StepFunction.from_duration_pairs([(10, 8)])
        assert s.value_at(5) == -3
        assert s.clip_low(0).value_at(5) == 0
        assert s.clip_low(0).value_at(20) == 5
        assert StepFunction.constant(9).clip_high(4).value_at(0) == 4

    def test_scale_and_shift(self):
        s = StepFunction.constant(4)
        assert s.scale(2.5).value_at(0) == 10
        assert s.shift_value(-1).value_at(0) == 3

    def test_floor(self):
        s = StepFunction.constant(3.7)
        assert s.floor().value_at(0) == 3

    def test_add_subtract_rectangle(self):
        s = StepFunction.constant(10)
        s2 = s.subtract_rectangle(5, 10, 4)
        assert s2.value_at(4) == 10
        assert s2.value_at(5) == 6
        assert s2.value_at(15) == 10
        assert s2.add_rectangle(5, 10, 4) == s

    def test_equality_ignores_representation(self):
        a = StepFunction([0.0, 10.0], [2.0, 2.0])
        b = StepFunction.constant(2)
        assert a == b
        assert not (a == StepFunction.constant(3))

    def test_is_non_negative(self):
        assert StepFunction.constant(0).is_non_negative()
        assert not (StepFunction.constant(1) - StepFunction.constant(2)).is_non_negative()


class TestFindHole:
    def test_immediate_fit(self):
        s = StepFunction.constant(10)
        assert s.find_hole(5, 100, 0) == 0

    def test_fit_after_busy_interval(self):
        s = StepFunction.constant(10).subtract_rectangle(0, 50, 8)
        # only 2 nodes available during [0, 50)
        assert s.find_hole(5, 10, 0) == 50
        assert s.find_hole(2, 10, 0) == 0

    def test_respects_earliest(self):
        s = StepFunction.constant(10)
        assert s.find_hole(5, 10, earliest=42) == 42

    def test_fits_inside_a_hole_exactly(self):
        s = StepFunction.constant(4).subtract_rectangle(0, 10, 4).subtract_rectangle(20, 10, 4)
        # hole of 4 nodes during [10, 20)
        assert s.find_hole(4, 10, 0) == 10
        assert s.find_hole(4, 11, 0) == 30

    def test_never_fits_returns_inf(self):
        s = StepFunction.constant(3)
        assert math.isinf(s.find_hole(5, 10, 0))

    def test_zero_request_fits_immediately(self):
        s = StepFunction.zero()
        assert s.find_hole(0, 10, 5) == 5
        assert s.find_hole(3, 0, 7) == 7

    def test_infinite_duration(self):
        s = StepFunction.constant(8).subtract_rectangle(0, 100, 6)
        assert s.find_hole(4, math.inf, 0) == 100
        assert s.find_hole(2, math.inf, 0) == 0
        assert math.isinf(s.find_hole(9, math.inf, 0))

    def test_alloc_limit(self):
        s = StepFunction.constant(10).subtract_rectangle(0, 50, 7)
        assert s.alloc_limit(0, 10, requested=5) == 3
        assert s.alloc_limit(0, 10, requested=2) == 2
        assert s.alloc_limit(60, 10, requested=12) == 10
        assert s.alloc_limit(0, 100, requested=5) == 3

    def test_alloc_limit_never_negative(self):
        s = StepFunction.constant(2) - StepFunction.constant(5)
        assert s.alloc_limit(0, 10, requested=4) == 0
