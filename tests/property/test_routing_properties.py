"""Cross-routing property tests: safety invariants hold for EVERY policy.

Whatever placement rule a registered routing policy implements, the
meta-scheduler must preserve the same federation-level invariants:

* **request conservation** -- every submitted job is routed to exactly one
  member cluster, none is dropped or duplicated;
* **no cross-cluster double-booking** -- an application's requests live on
  exactly one member (its session, its events, its node allocations), and
  no member ever allocates beyond its own capacity;
* **determinism under derive_seed** -- the full assignment sequence is a
  pure function of the federation seed and the submission sequence, so
  parallel campaign replays are reproducible at any worker count.
"""
from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.apps.rigid import RigidApplication
from repro.core.events import RequestStarted
from repro.federation import (
    ClusterSpec,
    Federation,
    FederationSpec,
    locality_group,
    routing_names,
)
from repro.sim import Simulator
from repro.sim.randomness import derive_seed

ALL_ROUTINGS = tuple(routing_names())

#: (capacities, jobs) -- job node counts stay within the largest cluster so
#: every job is placeable somewhere.
topologies = st.lists(
    st.integers(min_value=4, max_value=32), min_size=1, max_size=4
)
job_lists = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=4),        # node count
        st.floats(min_value=1.0, max_value=60.0),     # duration
        st.floats(min_value=0.0, max_value=120.0),    # submit time
    ),
    min_size=1,
    max_size=12,
)
routing_choice = st.sampled_from(ALL_ROUTINGS)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


def build_federation(capacities, routing, seed):
    spec = FederationSpec(
        clusters=tuple(
            ClusterSpec(name=f"c{i}", nodes=n) for i, n in enumerate(capacities)
        ),
        routing=routing,
    )
    simulator = Simulator()
    return Federation(spec, simulator, seed=seed), simulator


def run_jobs(capacities, jobs, routing, seed):
    """Submit every job at its trace time and run the simulation to the end."""
    fed, simulator = build_federation(capacities, routing, seed)
    apps = []

    def submit(index, nodes, duration):
        app = RigidApplication(f"job{index}", node_count=nodes, duration=duration)
        fed.submit(app, node_count=nodes, group=locality_group(app.name))
        apps.append(app)

    for index, (nodes, duration, submit_time) in enumerate(jobs):
        simulator.schedule_at(submit_time, submit, index, nodes, duration)
    simulator.run()
    return fed, apps


@settings(max_examples=40, deadline=None)
@given(capacities=topologies, jobs=job_lists, routing=routing_choice, seeds_=seeds)
def test_request_conservation(capacities, jobs, routing, seeds_):
    """Every submitted job lands on exactly one cluster; none is lost."""
    fed, apps = run_jobs(capacities, jobs, routing, seeds_)

    assert len(apps) == len(jobs)
    decisions = fed.meta.decisions
    assert len(decisions) == len(jobs)
    # One decision per job (decisions are logged in submission-time order,
    # so compare as sets), each naming a real member.
    member_names = {m.name for m in fed.members}
    assert sorted(d.app_id for d in decisions) == sorted(
        f"job{i}" for i in range(len(jobs))
    )
    assert all(d.cluster in member_names for d in decisions)
    # Counts add up: conservation across the federation.
    assert sum(fed.routed_counts().values()) == len(jobs)
    # Every job ran to completion on its home member (node counts fit by
    # construction, so nothing may starve forever).
    assert all(app.finished() for app in apps)


@settings(max_examples=40, deadline=None)
@given(capacities=topologies, jobs=job_lists, routing=routing_choice, seeds_=seeds)
def test_no_cross_cluster_double_booking(capacities, jobs, routing, seeds_):
    """An application exists on exactly one member; capacity is respected."""
    fed, apps = run_jobs(capacities, jobs, routing, seeds_)

    # Sessions: each app id appears on exactly one member RMS.
    homes = {}
    for member in fed.members:
        for app_id in member.rms.sessions:
            assert app_id not in homes, (
                f"application {app_id} has sessions on {homes[app_id]} "
                f"and {member.name}"
            )
            homes[app_id] = member.name
    assert len(homes) == len(jobs)

    # Event logs: starts of one application only ever appear on its home.
    for member in fed.members:
        for event in member.rms.event_log.of_kind(RequestStarted):
            assert homes[event.app_id] == member.name

    # Physical allocation: replaying each member's accounting intervals
    # never exceeds that member's capacity at any instant.
    for member in fed.members:
        edges = []
        for record in member.rms.accountant.records:
            edges.append((record.start, record.node_count))
            edges.append((record.end, -record.node_count))
        held = 0
        # Releases sort before same-instant allocations (a node freed at t
        # may be re-bound at t), so the sweep measures true concurrency.
        for _time, delta in sorted(edges, key=lambda e: (e[0], e[1])):
            held += delta
            assert held <= member.capacity


@settings(max_examples=25, deadline=None)
@given(capacities=topologies, jobs=job_lists, routing=routing_choice, seeds_=seeds)
def test_routing_determinism_under_derive_seed(capacities, jobs, routing, seeds_):
    """Same derived seed -> identical assignment sequence, twice over."""
    seed = derive_seed(seeds_, "routing-determinism")
    fed_a, _ = run_jobs(capacities, jobs, routing, seed)
    fed_b, _ = run_jobs(capacities, jobs, routing, seed)
    assert fed_a.meta.decisions == fed_b.meta.decisions
