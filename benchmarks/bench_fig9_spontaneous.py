"""Benchmark and reproduction of Figure 9 (spontaneous updates).

The timed section runs one dynamic-allocation scenario; after timing, the
full static-vs-dynamic sweep over overcommit factors is printed in the same
form as the figure's two panels (AMR used resources and PSA waste).
"""
from __future__ import annotations

from repro.experiments import fig9_spontaneous, run_scenario

BENCH_OVERCOMMITS = (0.5, 1.0, 2.0, 5.0)


def test_fig9_single_dynamic_scenario(benchmark, bench_scale):
    """Time one dynamic AMR + PSA scenario (the unit of the Figure 9 sweep)."""
    result = benchmark.pedantic(
        run_scenario,
        kwargs=dict(scale=bench_scale, seed=0, overcommit=1.0),
        rounds=3,
        iterations=1,
    )
    assert result.amr.finished()


def test_fig9_sweep_report(benchmark, report_scale):
    """Time (and print) the static-vs-dynamic sweep over overcommit factors."""
    points = benchmark.pedantic(
        fig9_spontaneous.run,
        kwargs=dict(overcommit_factors=BENCH_OVERCOMMITS, scale=report_scale, seed=0),
        rounds=1,
        iterations=1,
    )
    assert all(
        p.static_amr_used_node_seconds >= p.dynamic_amr_used_node_seconds for p in points
    )
    print()
    print(fig9_spontaneous.main(overcommit_factors=BENCH_OVERCOMMITS, scale=report_scale))
