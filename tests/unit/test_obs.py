"""Unit tests of the observability building blocks (``repro.obs``)."""
from __future__ import annotations

import io
import json
import logging
import math

import pytest

from repro.obs import (
    METRICS,
    PROFILER,
    TRACER,
    EventTracer,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    TraceEvent,
    diff_events,
    get_logger,
    load_chrome,
    load_jsonl,
    logging_setup,
    observation_enabled,
    observe,
)


class TestHooks:
    def test_disabled_by_default(self):
        assert TRACER[0] is None
        assert METRICS[0] is None
        assert PROFILER[0] is None
        assert not observation_enabled()

    def test_observe_installs_and_restores(self):
        tracer = EventTracer()
        with observe(tracer=tracer):
            assert TRACER[0] is tracer
            assert observation_enabled()
        assert TRACER[0] is None
        assert not observation_enabled()

    def test_observe_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observe(metrics=MetricsRegistry()):
                raise RuntimeError("boom")
        assert METRICS[0] is None

    def test_observe_nests(self):
        outer, inner = EventTracer(), EventTracer()
        with observe(tracer=outer):
            with observe(tracer=inner):
                assert TRACER[0] is inner
            assert TRACER[0] is outer


class TestEventTracer:
    def test_emit_orders_and_counts(self):
        tracer = EventTracer()
        tracer.emit(1.0, "engine", "dispatch", {"callback": "f"})
        tracer.emit(1.0, "scheduler", "fit", {"app": "a"})
        tracer.counter(2.0, "scheduler", "queue_depth", {"apps": 3})
        assert len(tracer) == 3
        assert tracer.categories() == ("engine", "scheduler")
        assert tracer.count_by()[("scheduler", "fit")] == 1
        assert tracer.of("scheduler", "queue_depth")[0].ph == "C"
        assert [e.seq for e in tracer.events] == [0, 1, 2]

    def test_jsonl_round_trip(self):
        tracer = EventTracer()
        tracer.emit(0.5, "engine", "dispatch", {"callback": "x", "event_seq": 7})
        tracer.emit(1.5, "federation", "route", {"app": "a", "cluster": "east"})
        text = tracer.to_jsonl()
        events = load_jsonl(text)
        assert events == tracer.events

    def test_jsonl_is_deterministic_bytes(self):
        def build() -> str:
            tracer = EventTracer()
            tracer.emit(0.25, "b_cat", "n", {"z": 1, "a": 2})
            tracer.emit(0.25, "a_cat", "n", {"k": "v"})
            return tracer.to_jsonl()

        assert build() == build()

    def test_max_events_truncates_explicitly(self):
        tracer = EventTracer(max_events=2)
        for i in range(5):
            tracer.emit(float(i), "c", "n")
        assert len(tracer) == 2
        assert tracer.dropped == 3
        lines = tracer.to_jsonl().splitlines()
        assert json.loads(lines[-1]) == {"truncated": True, "dropped_events": 3}
        # The truncation marker must not round-trip as an event.
        assert len(load_jsonl(tracer.to_jsonl())) == 2

    def test_summary_exposes_dropped_counts(self):
        tracer = EventTracer(max_events=2)
        for i in range(5):
            tracer.emit(float(i), "c", "n")
        assert tracer.summary() == {"events": 2, "dropped": 3, "emitted": 5}
        assert EventTracer().summary() == {"events": 0, "dropped": 0, "emitted": 0}

    def test_truncation_warns_once_not_per_event(self):
        stream = io.StringIO()
        logging_setup(stream=stream)
        tracer = EventTracer(max_events=1)
        for i in range(10):
            tracer.emit(float(i), "c", "n")
        output = stream.getvalue()
        assert output.count("max_events=1") == 1
        assert "dropped" in output

    def test_chrome_export_structure(self):
        tracer = EventTracer()
        tracer.emit(1.0, "engine", "dispatch", {"callback": "f"})
        tracer.counter(2.0, "scheduler", "queue_depth", {"apps": 1})
        doc = json.loads(tracer.to_chrome(label="test"))
        events = doc["traceEvents"]
        names = [e["name"] for e in events]
        assert "process_name" in names and "thread_name" in names
        instant = next(e for e in events if e["name"] == "dispatch")
        assert instant["ph"] == "i" and instant["s"] == "t"
        assert instant["ts"] == 1_000_000.0  # seconds -> microseconds
        counter = next(e for e in events if e["name"] == "queue_depth")
        assert counter["ph"] == "C"
        # Categories map to stable tids in sorted-category order.
        assert instant["tid"] == 1 and counter["tid"] == 2
        assert doc["otherData"]["event_count"] == 2

    def test_empty_tracer_exports(self):
        tracer = EventTracer()
        assert tracer.to_jsonl() == ""
        doc = json.loads(tracer.to_chrome())
        assert doc["otherData"]["event_count"] == 0

    def test_diff_identical(self):
        a = [TraceEvent(0.0, 0, "c", "n")]
        assert diff_events(a, list(a)) == []

    def test_diff_pinpoints_divergence(self):
        a = [TraceEvent(0.0, 0, "c", "n"), TraceEvent(1.0, 1, "c", "n", args={"x": 1})]
        b = [TraceEvent(0.0, 0, "c", "n"), TraceEvent(1.0, 1, "c", "n", args={"x": 2})]
        lines = diff_events(a, b)
        assert lines and "diverge at event 1" in lines[0]

    def test_diff_prints_surrounding_context_with_seq(self):
        a = [TraceEvent(float(i), i, "c", "n", args={"i": i}) for i in range(10)]
        b = list(a)
        b[5] = TraceEvent(5.0, 5, "c", "n", args={"i": 99})
        lines = diff_events(a, b)
        assert "diverge at event 5" in lines[0]
        # Default +-2 context around the divergence, for each stream,
        # every line carrying the event's seq number.
        a_lines = [line for line in lines if " a[" in line]
        b_lines = [line for line in lines if " b[" in line]
        assert len(a_lines) == 5 and len(b_lines) == 5
        assert any(">> a[5] seq=5" in line for line in lines)
        assert any(">> b[5] seq=5" in line for line in lines)
        assert all("seq=" in line for line in a_lines + b_lines)

    def test_diff_length_mismatch(self):
        a = [TraceEvent(0.0, 0, "c", "n")]
        lines = diff_events(a, a + [TraceEvent(1.0, 1, "c", "n")])
        assert lines == [
            "streams are identical for 1 events, then lengths differ: 1 vs 2"
        ]


class TestLoadJsonlErrors:
    def test_invalid_json_names_the_line(self):
        text = '{"ts": 0.0, "seq": 0, "cat": "c", "name": "n", "ph": "i", "args": {}}\n{broken\n'
        with pytest.raises(ValueError, match="line 2: invalid JSON"):
            load_jsonl(text)

    def test_non_object_line_names_the_line(self):
        with pytest.raises(ValueError, match="line 1: expected a JSON object, got list"):
            load_jsonl("[1, 2, 3]\n")

    def test_missing_required_keys_names_the_line(self):
        with pytest.raises(ValueError, match="line 1: not a valid trace event"):
            load_jsonl('{"cat": "c", "name": "n"}\n')

    def test_blank_lines_are_skipped(self):
        tracer = EventTracer()
        tracer.emit(1.0, "c", "n")
        padded = "\n" + tracer.to_jsonl() + "\n\n"
        assert load_jsonl(padded) == tracer.events


class TestChromeRoundTrip:
    def build_tracer(self) -> EventTracer:
        tracer = EventTracer()
        tracer.emit(0.0, "engine", "dispatch", {"callback": "f", "event_seq": 1})
        tracer.counter(1.5, "scheduler", "queue_depth", {"apps": 2, "pending": 1})
        tracer.emit(2.0, "federation", "route", {"app": "a", "cluster": "east"})
        return tracer

    def test_chrome_export_parses_back_losslessly(self):
        tracer = self.build_tracer()
        events = load_chrome(tracer.to_chrome(label="rt"))
        assert events == tracer.events

    def test_round_trip_survives_reexport(self):
        tracer = self.build_tracer()
        text = tracer.to_chrome()
        assert load_chrome(text) == load_chrome(text)

    def test_metadata_events_are_skipped(self):
        doc = json.loads(self.build_tracer().to_chrome())
        metadata = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert metadata, "export should carry process/thread metadata"
        assert len(load_chrome(json.dumps(doc))) == 3

    def test_invalid_document_raises(self):
        with pytest.raises(ValueError, match="invalid Chrome trace JSON"):
            load_chrome("{nope")
        with pytest.raises(ValueError, match="traceEvents"):
            load_chrome('{"other": 1}')
        with pytest.raises(ValueError, match="malformed trace_event record"):
            load_chrome('{"traceEvents": [{"ph": "i", "name": "n"}]}')


class TestMetricsRegistry:
    def test_counters_and_gauges(self):
        registry = MetricsRegistry()
        registry.inc("a.b")
        registry.inc("a.b", 2.0)
        registry.gauge("g", 5.0)
        registry.gauge("g", 7.0)
        assert registry.counter("a.b") == 3.0
        assert registry.counter("missing") == 0.0
        snapshot = registry.snapshot()
        assert snapshot["a.b"] == 3.0 and snapshot["g"] == 7.0

    def test_histogram_flattening(self):
        registry = MetricsRegistry()
        for value in (1.0, 3.0, 5.0):
            registry.observe("depth", value)
        snapshot = registry.snapshot()
        assert snapshot["depth.count"] == 3.0
        assert snapshot["depth.sum"] == 9.0
        assert snapshot["depth.mean"] == 3.0
        assert snapshot["depth.min"] == 1.0
        assert snapshot["depth.max"] == 5.0
        assert registry.histogram("depth").bucket_counts() == {
            "le=1": 1, "le=4": 1, "le=8": 1,
        }

    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.inc("z")
        registry.observe("a", 2.0)
        snapshot = registry.snapshot()
        assert list(snapshot) == sorted(snapshot)
        json.dumps(snapshot, allow_nan=False)  # must not raise

    def test_empty_histogram_has_no_infinite_keys(self):
        hist = Histogram()
        assert hist.mean == 0.0
        assert math.isinf(hist.min)  # internal sentinel ...
        registry = MetricsRegistry()
        registry._histograms["h"] = hist
        snapshot = registry.snapshot()
        assert "h.min" not in snapshot and "h.max" not in snapshot  # ... never exported

    def test_unknown_histogram_raises_with_known_names(self):
        registry = MetricsRegistry()
        registry.observe("known", 1.0)
        with pytest.raises(KeyError, match="known"):
            registry.histogram("nope")

    def test_rows_match_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("x", 4.0)
        assert registry.rows() == [("x", 4.0)]


class TestPhaseProfiler:
    def test_add_and_snapshot(self):
        profiler = PhaseProfiler()
        profiler.add("p", 0.5)
        profiler.add("p", 1.5)
        snapshot = profiler.snapshot()
        assert snapshot["p"]["seconds"] == 2.0
        assert snapshot["p"]["count"] == 2.0
        assert snapshot["p"]["mean_us"] == pytest.approx(1e6)

    def test_phase_context_manager_times(self):
        profiler = PhaseProfiler()
        with profiler.phase("work"):
            pass
        assert profiler.count("work") == 1
        assert profiler.seconds("work") >= 0.0

    def test_merge_aggregates_worker_snapshots(self):
        worker = PhaseProfiler()
        worker.add("scheduler.pass", 0.2, count=4)
        parent = PhaseProfiler()
        parent.add("scheduler.pass", 0.1, count=1)
        parent.merge(worker.snapshot())
        assert parent.seconds("scheduler.pass") == pytest.approx(0.3)
        assert parent.count("scheduler.pass") == 5


class TestLoggingSetup:
    def test_levels(self):
        logger = logging_setup()
        assert logger.level == logging.INFO
        assert logging_setup(verbose=True).level == logging.DEBUG
        assert logging_setup(quiet=True).level == logging.WARNING

    def test_idempotent_no_handler_stacking(self):
        first = logging_setup()
        count = len(first.handlers)
        for _ in range(3):
            logging_setup(verbose=True)
        assert len(first.handlers) == count

    def test_group_logger_routes_through_shared_handler(self):
        stream = io.StringIO()
        logging_setup(stream=stream)
        get_logger("campaign").info("hello from the campaign group")
        assert "hello from the campaign group" in stream.getvalue()

    def test_quiet_silences_narration_keeps_warnings(self):
        stream = io.StringIO()
        logging_setup(quiet=True, stream=stream)
        log = get_logger("trace")
        log.info("narration")
        log.warning("problem")
        output = stream.getvalue()
        assert "narration" not in output
        assert "problem" in output
