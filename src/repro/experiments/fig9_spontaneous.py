"""Figure 9 -- scheduling with spontaneous updates.

One AMR application and one PSA (600-second tasks) share a cluster sized to
the AMR's pre-allocation.  The AMR's pre-allocation is its ideal static guess
times an *overcommit factor*; the figure sweeps that factor and reports

* the resources effectively allocated to the AMR, for a *static* allocation
  (the application is forced to use its whole pre-allocation) and a *dynamic*
  allocation (the application updates its non-preemptible request inside the
  pre-allocation), and
* the PSA waste caused by the AMR's spontaneous updates in the dynamic case.

Expected shape: static used-resources grow with the overcommit factor while
dynamic stays flat; waste grows with the overcommit factor and saturates
beyond 1.
"""
from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..metrics.report import format_table
from .runner import EvaluationScale, run_scenario

__all__ = ["PAPER_OVERCOMMIT_FACTORS", "Fig9Point", "run", "main"]

#: Overcommit factors swept in the paper (log scale from 0.1 to 10).
PAPER_OVERCOMMIT_FACTORS: Tuple[float, ...] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)


@dataclass(frozen=True)
class Fig9Point:
    """One x-position of Figure 9."""

    overcommit: float
    static_amr_used_node_seconds: float
    dynamic_amr_used_node_seconds: float
    dynamic_psa_waste_node_seconds: float
    static_end_time: float
    dynamic_end_time: float


def run(
    overcommit_factors: Sequence[float] = PAPER_OVERCOMMIT_FACTORS,
    scale: EvaluationScale = None,
    seed: int = 0,
) -> List[Fig9Point]:
    """Run the Figure 9 sweep and return one point per overcommit factor."""
    if scale is None:
        scale = EvaluationScale.reduced()
    points: List[Fig9Point] = []
    for overcommit in overcommit_factors:
        static = run_scenario(
            scale,
            seed=seed,
            overcommit=overcommit,
            static_allocation=True,
            psa_task_durations=(scale.psa1_task_duration,),
        )
        dynamic = run_scenario(
            scale,
            seed=seed,
            overcommit=overcommit,
            static_allocation=False,
            psa_task_durations=(scale.psa1_task_duration,),
        )
        points.append(
            Fig9Point(
                overcommit=overcommit,
                static_amr_used_node_seconds=static.metrics.amr_used_node_seconds,
                dynamic_amr_used_node_seconds=dynamic.metrics.amr_used_node_seconds,
                dynamic_psa_waste_node_seconds=dynamic.metrics.psa_waste_node_seconds,
                static_end_time=static.metrics.amr_end_time,
                dynamic_end_time=dynamic.metrics.amr_end_time,
            )
        )
    return points


def main(
    overcommit_factors: Sequence[float] = PAPER_OVERCOMMIT_FACTORS,
    scale: EvaluationScale = None,
    seed: int = 0,
) -> str:
    """Render the Figure 9 reproduction as a text table."""
    points = run(overcommit_factors, scale=scale, seed=seed)
    rows = [
        (
            p.overcommit,
            round(p.static_amr_used_node_seconds),
            round(p.dynamic_amr_used_node_seconds),
            round(p.dynamic_psa_waste_node_seconds),
        )
        for p in points
    ]
    table = format_table(
        [
            "overcommit",
            "AMR used (static, node*s)",
            "AMR used (dynamic, node*s)",
            "PSA waste (dynamic, node*s)",
        ],
        rows,
    )
    return "Figure 9 -- spontaneous updates: AMR used resources and PSA waste\n" + table


if __name__ == "__main__":  # pragma: no cover
    print(main())
