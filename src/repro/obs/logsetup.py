"""Shared CLI logging configuration (``repro.obs.logging_setup``).

Every ``python -m repro`` command group configures its diagnostics through
one function instead of ad-hoc ``print`` calls: :func:`logging_setup`
installs a single stderr handler on the ``repro`` logger and maps the CLI's
``--verbose`` / ``--quiet`` flags to levels.  Command *output* (tables,
reports, file paths) keeps going to stdout via ``print``; everything that
narrates progress or context goes through loggers, so ``--quiet`` silences
narration without touching output and ``--verbose`` turns on debug detail
-- uniformly across the campaign, trace, policy, federation and obs
groups.
"""
from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["logging_setup", "get_logger"]

#: The root logger of the package; every group logs under ``repro.<group>``.
ROOT_LOGGER_NAME = "repro"

#: Marker attribute identifying the handler this module installed.
_HANDLER_MARK = "_repro_obs_handler"


def get_logger(group: str) -> logging.Logger:
    """The logger of one command group (``repro.campaign``, ...)."""
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{group}")


def logging_setup(
    verbose: bool = False,
    quiet: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the shared ``repro`` logger and return it.

    ``verbose`` selects DEBUG, ``quiet`` selects WARNING (narration off,
    problems still visible), the default is INFO.  The function is
    idempotent: repeated calls reconfigure the level but never stack
    handlers, so CLI entry points may call it unconditionally.  *stream*
    defaults to ``sys.stderr`` -- logs never contaminate stdout, whose
    bytes CI compares across worker counts.
    """
    logger = logging.getLogger(ROOT_LOGGER_NAME)
    level = logging.DEBUG if verbose else (logging.WARNING if quiet else logging.INFO)
    logger.setLevel(level)

    handler: Optional[logging.Handler] = None
    for existing in logger.handlers:
        if getattr(existing, _HANDLER_MARK, False):
            handler = existing
            break
    if handler is None:
        handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
        setattr(handler, _HANDLER_MARK, True)
        handler.setFormatter(logging.Formatter("%(message)s"))
        logger.addHandler(handler)
        logger.propagate = False
    else:
        # Rebind instead of handler.setStream(): setStream flushes the
        # outgoing stream first, which raises if it has since been closed
        # (e.g. a test harness's captured stderr from an earlier CLI
        # invocation).  With no explicit *stream*, re-resolve sys.stderr so
        # the handler follows redirections instead of pinning the stream
        # that happened to be installed at first call.
        handler.acquire()
        try:
            handler.stream = stream if stream is not None else sys.stderr
        finally:
            handler.release()
    handler.setLevel(logging.DEBUG)
    return logger
