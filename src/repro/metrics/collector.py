"""Metrics extracted from a finished simulation.

The evaluation section of the paper reports three families of quantities:

* **AMR used resources** -- node-seconds effectively allocated to the evolving
  application (Figure 9);
* **PSA waste** -- node-seconds of killed parameter-sweep tasks (Figures 9
  and 10), also expressed as a percentage of the platform capacity;
* **percent of used resources** -- node-seconds allocated to applications
  minus the PSA waste, as a fraction of the total node-seconds offered by the
  platform over the measurement horizon (Figures 10 and 11).

:class:`SimulationMetrics` computes all of them from the RMS accountant and
the application objects, so every experiment and benchmark shares one
definition of every metric.
"""
from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from ..apps.nea import AmrApplication
from ..apps.psa import ParameterSweepApplication
from ..core.rms import CooRMv2
from ..core.types import RequestType

__all__ = [
    "SimulationMetrics",
    "clip_node_seconds",
    "measurement_window_start",
    "summarize_runs",
    "median_summary",
]


def measurement_window_start(amr: Optional[AmrApplication]) -> float:
    """Start of the measurement window: the AMR's first allocation, else 0.

    One definition shared by :meth:`SimulationMetrics.collect_multi` and the
    per-cluster federation breakdown, so both always measure the same window.
    """
    if amr is not None and not math.isnan(amr.computation_started_at):
        return amr.computation_started_at
    return 0.0


def clip_node_seconds(record, window_start: float, window_end: float) -> float:
    """Node-seconds of one allocation record inside the window."""
    overlap = min(record.end, window_end) - max(record.start, window_start)
    return record.node_count * max(0.0, overlap)


@dataclass
class SimulationMetrics:
    """All headline metrics of one simulation run."""

    #: Measurement horizon (seconds): usually the AMR's computation time.
    horizon: float
    #: Total node-seconds the platform offered over the horizon.
    capacity_node_seconds: float
    #: Node-seconds allocated to the evolving application (non-preemptible).
    amr_used_node_seconds: float
    #: Wall-clock time of the evolving application's computation.
    amr_end_time: float
    #: Node-seconds of killed PSA tasks.
    psa_waste_node_seconds: float
    #: Node-seconds of completed PSA tasks.
    psa_completed_node_seconds: float
    #: Node-seconds allocated to every application (any request type but PA).
    total_allocated_node_seconds: float

    @property
    def psa_waste_percent(self) -> float:
        """PSA waste as a percentage of the platform capacity.

        A degenerate capacity (zero-length measurement window, or a NaN
        horizon from an application that never started) yields 0.0, never
        NaN or a division error.
        """
        if not math.isfinite(self.capacity_node_seconds) or self.capacity_node_seconds <= 0:
            return 0.0
        return 100.0 * self.psa_waste_node_seconds / self.capacity_node_seconds

    @property
    def used_resources_percent(self) -> float:
        """Percent of used resources as defined in Section 5.3.

        Degenerate capacities yield 0.0 (see :attr:`psa_waste_percent`).
        """
        if not math.isfinite(self.capacity_node_seconds) or self.capacity_node_seconds <= 0:
            return 0.0
        useful = self.total_allocated_node_seconds - self.psa_waste_node_seconds
        return 100.0 * useful / self.capacity_node_seconds

    def to_dict(self) -> Dict[str, float]:
        """Flat, JSON-friendly mapping of every metric (fields + derived).

        Non-finite values (an unfinished AMR reports a NaN end time) are
        mapped to ``None`` so the result is valid strict JSON; this is what
        campaign result stores persist per run.
        """
        def clean(value: float) -> Optional[float]:
            return float(value) if math.isfinite(value) else None

        return {
            "horizon": clean(self.horizon),
            "capacity_node_seconds": clean(self.capacity_node_seconds),
            "amr_used_node_seconds": clean(self.amr_used_node_seconds),
            "amr_end_time": clean(self.amr_end_time),
            "psa_waste_node_seconds": clean(self.psa_waste_node_seconds),
            "psa_completed_node_seconds": clean(self.psa_completed_node_seconds),
            "total_allocated_node_seconds": clean(self.total_allocated_node_seconds),
            "psa_waste_percent": clean(self.psa_waste_percent),
            "used_resources_percent": clean(self.used_resources_percent),
        }

    @classmethod
    def collect(
        cls,
        rms: CooRMv2,
        amr: Optional[AmrApplication] = None,
        psas: Sequence[ParameterSweepApplication] = (),
        horizon: Optional[float] = None,
    ) -> "SimulationMetrics":
        """Build the metrics from a finished simulation.

        The horizon defaults to the AMR's computation time (from its first
        allocation to its completion), which is how the paper normalises the
        "percent of used resources".
        """
        return cls.collect_multi((rms,), amr=amr, psas=psas, horizon=horizon)

    @classmethod
    def collect_multi(
        cls,
        rmss: Sequence[CooRMv2],
        amr: Optional[AmrApplication] = None,
        psas: Sequence[ParameterSweepApplication] = (),
        horizon: Optional[float] = None,
    ) -> "SimulationMetrics":
        """Metrics aggregated over several RMSs sharing one event engine.

        This is :meth:`collect` generalised to a federation: the capacity is
        the combined node count of every member, allocation records of all
        members count towards the totals, and the horizon comes from the
        shared simulation clock (every member reports the same ``now``).
        With a single RMS the arithmetic reduces exactly to :meth:`collect`
        -- same terms, same order -- which is what the single-cluster
        federation equivalence guarantee rests on.
        """
        if not rmss:
            raise ValueError("collect_multi needs at least one RMS")
        window_start = measurement_window_start(amr)
        if horizon is None:
            if amr is not None and amr.finished():
                horizon = amr.computation_time()
            else:
                horizon = rmss[0].now - window_start
        window_end = window_start + horizon
        capacity = sum(rms.total_nodes() for rms in rmss) * horizon

        def clipped(record) -> float:
            return clip_node_seconds(record, window_start, window_end)

        total_allocated = sum(
            clipped(rec)
            for rms in rmss
            for rec in rms.accountant.records
            if rec.rtype is not RequestType.PREALLOCATION
        )

        amr_used = 0.0
        amr_end = math.nan
        if amr is not None:
            amr_used = sum(
                clipped(rec)
                for rms in rmss
                for rec in rms.accountant.records
                if rec.app_id == amr.name and rec.rtype is RequestType.NON_PREEMPTIBLE
            )
            if amr_used == 0.0:
                amr_used = amr.used_node_seconds
            amr_end = amr.computation_time()

        waste = sum(p.stats.waste_node_seconds for p in psas)
        completed = sum(p.stats.completed_node_seconds for p in psas)

        return cls(
            horizon=horizon,
            capacity_node_seconds=capacity,
            amr_used_node_seconds=amr_used,
            amr_end_time=amr_end,
            psa_waste_node_seconds=waste,
            psa_completed_node_seconds=completed,
            total_allocated_node_seconds=total_allocated,
        )


def summarize_runs(metrics: Iterable[SimulationMetrics]) -> Dict[str, float]:
    """Median-based summary over repeated runs (the paper plots medians).

    The result is always NaN-free: non-finite samples (an unfinished AMR
    reports a NaN end time; a zero-length measurement window can make the
    derived percentages non-finite) are dropped per key, and a key with no
    finite sample at all is omitted rather than reported as NaN.  Empty
    input yields an empty dict.
    """
    runs: List[SimulationMetrics] = list(metrics)
    if not runs:
        return {}

    def median_of_finite(values: List[float]) -> Optional[float]:
        values = sorted(v for v in values if math.isfinite(v))
        n = len(values)
        if not n:
            return None
        mid = n // 2
        if n % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    candidates = {
        "amr_used_node_seconds": [m.amr_used_node_seconds for m in runs],
        "amr_end_time": [m.amr_end_time for m in runs],
        "psa_waste_node_seconds": [m.psa_waste_node_seconds for m in runs],
        "psa_waste_percent": [m.psa_waste_percent for m in runs],
        "used_resources_percent": [m.used_resources_percent for m in runs],
    }
    summary: Dict[str, float] = {}
    for key, values in candidates.items():
        median = median_of_finite(values)
        if median is not None:
            summary[key] = median
    return summary


def median_summary(records: Iterable[Mapping[str, object]]) -> Dict[str, float]:
    """Per-key medians over a list of flat metric mappings.

    This is the dict-level counterpart of :func:`summarize_runs`, used by the
    campaign result store: records are arbitrary flat ``{metric: value}``
    mappings (as produced by scenario runners) and only numeric values
    participate -- missing or ``None`` entries are skipped per key.
    """
    values: Dict[str, List[float]] = {}
    for record in records:
        for key, value in record.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if not math.isfinite(value):
                continue
            values.setdefault(key, []).append(float(value))

    def median(samples: List[float]) -> float:
        samples = sorted(samples)
        n = len(samples)
        mid = n // 2
        if n % 2:
            return samples[mid]
        return 0.5 * (samples[mid - 1] + samples[mid])

    return {key: median(samples) for key, samples in sorted(values.items())}
